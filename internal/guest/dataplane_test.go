package guest

import (
	"fmt"
	"testing"

	"govisor/internal/core"
	"govisor/internal/isa"
	"govisor/internal/sched"
	"govisor/internal/virtio"
	"govisor/internal/vnet"
)

// The dataplane differential suite is the equivalence proof for PR 10's two
// fast paths: timestamp-ordered epoch-barrier frame delivery and the
// span-resolution DMA memo. A fleet of unicast sender→receiver pairs over
// one shared switch must end in byte-identical guest state — cycles,
// registers, CSRs, UART, RAM hashes (which cover the receivers' RX buffers,
// i.e. the delivered frames and their order), VMM/MMU/TLB stats and switch
// counters — no matter whether it ran serially, under RunParallel with any
// worker count, or with the span memo disabled.

// dataplanePair describes one sender→receiver flow.
type dataplanePair struct {
	frames, batch, frameLen uint64
}

// buildDataplaneFleet boots pairs of unicast senders and passive receivers
// onto one host sharing a single switch. VM 2i is the sender of pair i,
// VM 2i+1 its receiver. Receiver MACs are statically installed in the FDB
// (passive receivers never transmit, so the switch cannot learn them).
func buildDataplaneFleet(t *testing.T, pairs []dataplanePair, tweak func(*core.Config)) (*core.Host, *vnet.Switch) {
	t.Helper()
	sw := vnet.NewSwitch()
	h := core.NewHost(uint64(2*len(pairs))*(testRAM>>isa.PageShift)+64, 2, sched.NewCredit())
	for i, p := range pairs {
		srcMAC := vnet.MACForVM(uint32(2 * i))
		dstMAC := vnet.MACForVM(uint32(2*i + 1))

		cfg := core.Config{Name: fmt.Sprintf("tx%d", i), Mode: core.ModeHW, MemBytes: testRAM}
		if tweak != nil {
			tweak(&cfg)
		}
		send, err := h.CreateVM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := send.AttachVirtioNet(sw.NewPort()); err != nil {
			t.Fatal(err)
		}
		prog, err := BuildVirtioNetUnicastProgram(p.frames, p.batch, p.frameLen, 0, srcMAC, dstMAC)
		if err != nil {
			t.Fatal(err)
		}
		if err := send.Boot(prog); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(2*i, 256, 0)

		cfg.Name = fmt.Sprintf("rx%d", i)
		recv, err := h.CreateVM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		rxPort := sw.NewPort()
		if _, _, err := recv.AttachVirtioNet(rxPort); err != nil {
			t.Fatal(err)
		}
		sw.Learn(dstMAC, rxPort)
		rprog, err := BuildVirtioNetRXProgram(p.frames, 12+p.frameLen, 0)
		if err != nil {
			t.Fatal(err)
		}
		if err := recv.Boot(rprog); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(2*i+1, 256, 0)
	}
	return h, sw
}

// dataplanePairs staggers frame counts, batch sizes and frame lengths so the
// senders' kicks land at different simulated cycles — the epoch-barrier
// flush really has to sort cross-port by timestamp, not just replay port
// order.
func dataplanePairs() []dataplanePair {
	return []dataplanePair{
		{frames: 16, batch: 4, frameLen: 64},
		{frames: 12, batch: 6, frameLen: 96},
		{frames: 8, batch: 2, frameLen: 128},
	}
}

type swStats struct{ forwarded, flooded, dropped uint64 }

func switchStats(sw *vnet.Switch) swStats {
	f, fl, d := sw.Stats()
	return swStats{f, fl, d}
}

func checkDataplaneDelivery(t *testing.T, label string, h *core.Host, sw *vnet.Switch, pairs []dataplanePair) {
	t.Helper()
	if !h.AllHalted() {
		for _, vm := range h.VMs {
			t.Logf("[%s] %s: state %v err %v pc %#x", label, vm.Name, vm.State, vm.Err, vm.CPU.PC)
		}
		t.Fatalf("[%s] dataplane fleet did not halt", label)
	}
	var want uint64
	for _, p := range pairs {
		want += p.frames
	}
	st := switchStats(sw)
	if st.forwarded != want || st.flooded != 0 || st.dropped != 0 {
		t.Fatalf("[%s] switch stats %+v, want %d unicast forwards, no floods, no drops",
			label, st, want)
	}
	// Every frame landed: each receiver's RX used ring advanced by its
	// sender's frame count. (All pairs post ≤16 buffers, so ringFor sizes
	// every RX ring at its 16-entry floor.)
	_, _, used, _ := virtio.Layout(ioQueueBase, 16)
	for i, p := range pairs {
		recv := h.VMs[2*i+1]
		got, f := recv.Mem.ReadUint(used+2, 2)
		if f != nil {
			t.Fatalf("[%s] rx%d: used.idx read fault", label, i)
		}
		if got != p.frames {
			t.Fatalf("[%s] rx%d received %d frames, want %d", label, i, got, p.frames)
		}
	}
}

// TestDifferentialDataplaneInvisible: the timestamp-ordered switch flush and
// the span-DMA memo must be architecturally invisible. RunParallel with 1..4
// workers is byte-identical per VM (full comparison including exit counters
// and population stats), the serial engine reaches the same guest-visible
// state (host clock legitimately differs: epoch scheduling is host
// bookkeeping), and a NoSpanDMA reference fleet matches in full.
func TestDifferentialDataplaneInvisible(t *testing.T) {
	pairs := dataplanePairs()

	ref, refSW := buildDataplaneFleet(t, pairs, nil)
	ref.RunParallel(1, 8_000_000_000)
	checkDataplaneDelivery(t, "w=1", ref, refSW, pairs)
	refStats := switchStats(refSW)

	for workers := 2; workers <= 4; workers++ {
		h, sw := buildDataplaneFleet(t, pairs, nil)
		h.RunParallel(workers, 8_000_000_000)
		checkDataplaneDelivery(t, fmt.Sprintf("w=%d", workers), h, sw, pairs)
		if h.Now != ref.Now {
			t.Errorf("w=%d: host clock %d != %d", workers, h.Now, ref.Now)
		}
		if got := switchStats(sw); got != refStats {
			t.Errorf("w=%d: switch stats diverged: %+v vs %+v", workers, got, refStats)
		}
		for i := range h.VMs {
			compareVMs(t, fmt.Sprintf("w=%d vm=%s", workers, h.VMs[i].Name),
				ref.VMs[i], h.VMs[i], true)
		}
	}

	// Serial engine: frames deliver synchronously mid-step instead of at
	// epoch barriers. Disjoint unicast flows make delivery order per
	// receiver depend only on its one sender's send order, so guest-visible
	// state must still match exactly.
	hs, ssw := buildDataplaneFleet(t, pairs, nil)
	hs.Run(8_000_000_000)
	checkDataplaneDelivery(t, "serial", hs, ssw, pairs)
	if got := switchStats(ssw); got != refStats {
		t.Errorf("serial: switch stats diverged: %+v vs %+v", got, refStats)
	}
	for i := range hs.VMs {
		compareVMs(t, fmt.Sprintf("serial vm=%s", hs.VMs[i].Name),
			ref.VMs[i], hs.VMs[i], false)
	}

	// Span-memo reference arm: every DMA access resolves through the
	// unmemoized per-page path. Full comparison — the memo may not even
	// perturb population or dirty-tracking counters.
	hn, nsw := buildDataplaneFleet(t, pairs, func(cfg *core.Config) { cfg.NoSpanDMA = true })
	hn.RunParallel(1, 8_000_000_000)
	checkDataplaneDelivery(t, "nospan", hn, nsw, pairs)
	if got := switchStats(nsw); got != refStats {
		t.Errorf("nospan: switch stats diverged: %+v vs %+v", got, refStats)
	}
	for i := range hn.VMs {
		compareVMs(t, fmt.Sprintf("nospan vm=%s", hn.VMs[i].Name),
			ref.VMs[i], hn.VMs[i], true)
	}

	// And the cross product: NoSpanDMA under the serial engine.
	hns, nssw := buildDataplaneFleet(t, pairs, func(cfg *core.Config) { cfg.NoSpanDMA = true })
	hns.Run(8_000_000_000)
	checkDataplaneDelivery(t, "nospan-serial", hns, nssw, pairs)
	for i := range hns.VMs {
		compareVMs(t, fmt.Sprintf("nospan-serial vm=%s", hns.VMs[i].Name),
			ref.VMs[i], hns.VMs[i], false)
	}
}

// TestDataplaneConvergedFrames: the receivers' RX buffers contain exactly
// the bytes their senders transmitted, in send order — the payload stamp
// (frame index) ascends through the posted buffers. This nails delivery
// *order*, not just delivery count, across both engines.
func TestDataplaneConvergedFrames(t *testing.T) {
	pairs := dataplanePairs()
	for _, engine := range []string{"serial", "parallel"} {
		h, sw := buildDataplaneFleet(t, pairs, nil)
		if engine == "serial" {
			h.Run(8_000_000_000)
		} else {
			h.RunParallel(4, 8_000_000_000)
		}
		checkDataplaneDelivery(t, engine, h, sw, pairs)
		for i, p := range pairs {
			recv := h.VMs[2*i+1]
			bufLen := 12 + p.frameLen
			stride := (bufLen + 63) &^ 63
			for fr := uint64(0); fr < p.frames; fr++ {
				// The sender stamps each batch's frames with its sent-count at
				// batch start (buffer offset 24: past the 12-byte virtio-net
				// header and the 12-byte MAC header; the receive path rewrites
				// the virtio-net header as zeros, so the offset is the same in
				// the posted buffer).
				addr := ioDataBase + fr*stride + 24
				got, f := recv.Mem.ReadUint(addr, 8)
				if f != nil {
					t.Fatalf("[%s] rx%d frame %d: stamp read fault", engine, i, fr)
				}
				if want := (fr / p.batch) * p.batch; got != want {
					t.Fatalf("[%s] rx%d buffer %d holds batch stamp %d, want %d: frames delivered out of send order",
						engine, i, fr, got, want)
				}
			}
		}
	}
}
