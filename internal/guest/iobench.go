package guest

import (
	"encoding/binary"
	"fmt"

	"govisor/internal/asm"
	"govisor/internal/dev"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/virtio"
)

// I/O benchmark programs are standalone guest images (not the universal
// kernel): straight-line drivers for the programmed-I/O baseline devices
// and for virtio queues, bracketed by HCMarker(1)/HCMarker(2) so the host
// measures exactly the I/O region. They run under any virtualization mode
// (bare addressing: SATP stays off — the I/O path, not the MMU, is under
// test).

// Guest-physical layout used by the virtio programs.
const (
	ioQueueBase  = 0x30000 // virtqueue rings
	ioHdrBase    = 0x38000 // request headers (32 B apart)
	ioStatusBase = 0x3C000 // status bytes
	ioDataBase   = 0x40000 // data buffers (512 B per in-flight request)
)

func emitMarker(b *asm.Builder, id uint64) {
	b.Li(isa.RegA0, id)
	b.Li(isa.RegA7, gabi.HCMarker)
	b.Ecall()
}

// emitTrapStub installs a catch-all trap handler that halts with 0xEE, so a
// bug in an I/O program surfaces as a visible halt code instead of a wild
// jump through stvec = 0.
func emitTrapStub(b *asm.Builder) {
	b.La(isa.RegT0, "io_trap")
	b.Csrw(isa.CSRStvec, isa.RegT0)
}

// emitTrapStubBody must be emitted once at the end of the program.
func emitTrapStubBody(b *asm.Builder) {
	b.Align(4)
	b.Label("io_trap")
	b.Halt(0xEE)
}

// BuildPIODiskProgram emits a guest that writes (write=true) or reads
// `sectors` sectors through the programmed-I/O disk, one register access at
// a time — the emulated-device baseline of T6.
func BuildPIODiskProgram(sectors uint64, write bool) ([]byte, error) {
	b := asm.NewBuilder(gabi.KernelBase)
	emitTrapStub(b)
	emitMarker(b, 1)
	b.Li(isa.RegS0, 0)       // sector counter
	b.Li(isa.RegS1, sectors) // limit
	b.Li(isa.RegT0, dev.PIODiskBase)

	b.Label("sector_loop")
	b.Store(isa.OpSD, isa.RegS0, isa.RegT0, dev.PIODiskSector)
	b.Li(isa.RegT1, dev.PIODiskCmdRewind)
	b.Store(isa.OpSD, isa.RegT1, isa.RegT0, dev.PIODiskCmd)
	if write {
		b.Li(isa.RegT2, dev.SectorSize/8)
		b.Label("data_loop")
		b.Store(isa.OpSD, isa.RegS0, isa.RegT0, dev.PIODiskData)
		b.I(isa.OpADDI, isa.RegT2, isa.RegT2, -1)
		b.Branch(isa.OpBNE, isa.RegT2, isa.RegZero, "data_loop")
		b.Li(isa.RegT1, dev.PIODiskCmdWrite)
		b.Store(isa.OpSD, isa.RegT1, isa.RegT0, dev.PIODiskCmd)
	} else {
		b.Li(isa.RegT1, dev.PIODiskCmdRead)
		b.Store(isa.OpSD, isa.RegT1, isa.RegT0, dev.PIODiskCmd)
		b.Li(isa.RegT2, dev.SectorSize/8)
		b.Label("data_loop")
		b.Load(isa.OpLD, isa.RegT3, isa.RegT0, dev.PIODiskData)
		b.I(isa.OpADDI, isa.RegT2, isa.RegT2, -1)
		b.Branch(isa.OpBNE, isa.RegT2, isa.RegZero, "data_loop")
	}
	b.Load(isa.OpLD, isa.RegT3, isa.RegT0, dev.PIODiskStatus)
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, 1)
	b.Branch(isa.OpBLTU, isa.RegS0, isa.RegS1, "sector_loop")

	emitMarker(b, 2)
	b.Halt(0)
	emitTrapStubBody(b)
	return b.Finish()
}

// ringFor sizes a power-of-two ring holding descPerReq×batch descriptors.
func ringFor(batch, descPerReq uint64) (uint16, error) {
	num := uint64(16)
	for num < descPerReq*batch {
		num *= 2
	}
	if num > virtio.MaxQueueSize {
		return 0, fmt.Errorf("guest: batch %d needs ring beyond %d", batch, virtio.MaxQueueSize)
	}
	return uint16(num), nil
}

// emitQueueSetup programs the virtio-mmio queue registers (one-time cost,
// outside the measured region). Clobbers t0/t1.
func emitQueueSetup(b *asm.Builder, devBase uint64, queue int, num uint16, descB, availB, usedB uint64) {
	b.Li(isa.RegT0, devBase)
	b.Li(isa.RegT1, uint64(queue))
	b.Store(isa.OpSW, isa.RegT1, isa.RegT0, virtio.RegQueueSel)
	b.Li(isa.RegT1, uint64(num))
	b.Store(isa.OpSW, isa.RegT1, isa.RegT0, virtio.RegQueueNum)
	b.Li(isa.RegT1, descB)
	b.Store(isa.OpSD, isa.RegT1, isa.RegT0, virtio.RegQueueDesc)
	b.Li(isa.RegT1, availB)
	b.Store(isa.OpSD, isa.RegT1, isa.RegT0, virtio.RegQueueAvail)
	b.Li(isa.RegT1, usedB)
	b.Store(isa.OpSD, isa.RegT1, isa.RegT0, virtio.RegQueueUsed)
	b.Li(isa.RegT1, 1)
	b.Store(isa.OpSW, isa.RegT1, isa.RegT0, virtio.RegQueueReady)
}

// BuildVirtioBlkProgram emits a guest that issues `total` sector writes
// through virtio-blk in batches of `batch` requests per doorbell kick —
// the paravirtual side of T6 and the queue-depth ablation A4. slot is the
// virtio slot index the device was attached at (0 for the first device).
//
// Register plan: s0 done, s1 total, s2 avail-idx shadow, s3 sector,
// s4 request-in-batch, s5 batch, t* scratch.
func BuildVirtioBlkProgram(total, batch uint64, slot int) ([]byte, error) {
	if batch == 0 || total == 0 || total%batch != 0 {
		return nil, fmt.Errorf("guest: total %d not a multiple of batch %d", total, batch)
	}
	num, err := ringFor(batch, 3)
	if err != nil {
		return nil, err
	}
	descB, availB, usedB, _ := virtio.Layout(ioQueueBase, num)
	devBase := uint64(dev.VirtioBase + slot*dev.VirtioStride)

	b := asm.NewBuilder(gabi.KernelBase)
	emitTrapStub(b)
	emitQueueSetup(b, devBase, 0, num, descB, availB, usedB)
	emitMarker(b, 1)

	b.Li(isa.RegS0, 0)
	b.Li(isa.RegS1, total)
	b.Li(isa.RegS2, 0)
	b.Li(isa.RegS3, 0)
	b.Li(isa.RegS5, batch)

	b.Label("batch_loop")
	b.Li(isa.RegS4, 0)

	b.Label("req_loop")
	// t1 = head = 3r.
	b.I(isa.OpSLLI, isa.RegT1, isa.RegS4, 1)
	b.R(isa.OpADD, isa.RegT1, isa.RegT1, isa.RegS4)
	// t2 = &desc[head].
	b.I(isa.OpSLLI, isa.RegT2, isa.RegT1, 4)
	b.Li(isa.RegT3, descB)
	b.R(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT3)
	// t4 = header address; fill {type=OUT, sector}.
	b.I(isa.OpSLLI, isa.RegT4, isa.RegS4, 5)
	b.Li(isa.RegT3, ioHdrBase)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT3)
	b.Li(isa.RegT5, virtio.BlkTOut)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT4, 0)
	b.Store(isa.OpSD, isa.RegS3, isa.RegT4, 8)
	// desc[head] = {hdr, 16, NEXT, head+1}.
	b.Store(isa.OpSD, isa.RegT4, isa.RegT2, 0)
	b.Li(isa.RegT5, virtio.BlkHeaderSize)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT2, 8)
	b.Li(isa.RegT5, uint64(virtio.DescNext))
	b.Store(isa.OpSH, isa.RegT5, isa.RegT2, 12)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT1, 1)
	b.Store(isa.OpSH, isa.RegT5, isa.RegT2, 14)
	// t4 = data buffer; desc[head+1] = {data, 512, NEXT, head+2}.
	b.I(isa.OpSLLI, isa.RegT4, isa.RegS4, 9)
	b.Li(isa.RegT3, ioDataBase)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT3)
	b.Store(isa.OpSD, isa.RegT4, isa.RegT2, 16)
	b.Li(isa.RegT5, virtio.SectorSize)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT2, 24)
	b.Li(isa.RegT5, uint64(virtio.DescNext))
	b.Store(isa.OpSH, isa.RegT5, isa.RegT2, 28)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT1, 2)
	b.Store(isa.OpSH, isa.RegT5, isa.RegT2, 30)
	// t4 = status byte; desc[head+2] = {status, 1, WRITE, 0}.
	b.Li(isa.RegT3, ioStatusBase)
	b.R(isa.OpADD, isa.RegT4, isa.RegS4, isa.RegT3)
	b.Store(isa.OpSD, isa.RegT4, isa.RegT2, 32)
	b.Li(isa.RegT5, 1)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT2, 40)
	b.Li(isa.RegT5, uint64(virtio.DescWrite))
	b.Store(isa.OpSH, isa.RegT5, isa.RegT2, 44)
	b.Store(isa.OpSH, isa.RegZero, isa.RegT2, 46)
	// avail.ring[s2 & (num-1)] = head.
	b.I(isa.OpANDI, isa.RegT5, isa.RegS2, int64(num-1))
	b.I(isa.OpSLLI, isa.RegT5, isa.RegT5, 1)
	b.Li(isa.RegT3, availB+4)
	b.R(isa.OpADD, isa.RegT5, isa.RegT5, isa.RegT3)
	b.Store(isa.OpSH, isa.RegT1, isa.RegT5, 0)
	b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
	b.I(isa.OpADDI, isa.RegS3, isa.RegS3, 1)
	b.I(isa.OpADDI, isa.RegS4, isa.RegS4, 1)
	b.Branch(isa.OpBLTU, isa.RegS4, isa.RegS5, "req_loop")

	// Publish the batch and kick once.
	b.Li(isa.RegT3, availB)
	b.Store(isa.OpSH, isa.RegS2, isa.RegT3, 2)
	b.Li(isa.RegT0, devBase)
	b.Store(isa.OpSW, isa.RegZero, isa.RegT0, virtio.RegNotify)
	// Poll completion: used.idx catches up to the shadow (synchronous
	// device model ⇒ first read succeeds; loop kept for protocol fidelity).
	b.Li(isa.RegT3, usedB)
	b.Label("poll")
	b.Load(isa.OpLHU, isa.RegT4, isa.RegT3, 2)
	b.I(isa.OpANDI, isa.RegT5, isa.RegS2, 0xFFFF)
	b.Branch(isa.OpBNE, isa.RegT4, isa.RegT5, "poll")
	// Acknowledge the interrupt (one more MMIO write, as a real driver).
	b.Li(isa.RegT5, 1)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT0, virtio.RegIntAck)

	b.R(isa.OpADD, isa.RegS0, isa.RegS0, isa.RegS5)
	b.Branch(isa.OpBLTU, isa.RegS0, isa.RegS1, "batch_loop")

	emitMarker(b, 2)
	b.Halt(0)
	emitTrapStubBody(b)
	return b.Finish()
}

// BuildRegNICProgram emits a guest transmitting `frames` frames of
// `frameLen` bytes through the register-banged NIC: one MMIO store per
// 8 bytes — the emulated-NIC baseline of T6.
func BuildRegNICProgram(frames, frameLen uint64) ([]byte, error) {
	if frameLen < 12 || frameLen > dev.MaxFrameSize {
		return nil, fmt.Errorf("guest: frame length %d out of range", frameLen)
	}
	b := asm.NewBuilder(gabi.KernelBase)
	emitTrapStub(b)
	emitMarker(b, 1)
	b.Li(isa.RegS0, 0)
	b.Li(isa.RegS1, frames)
	b.Li(isa.RegT0, dev.RegNICBase)

	words := (frameLen + 7) / 8
	b.Label("frame_loop")
	b.Li(isa.RegT1, frameLen)
	b.Store(isa.OpSD, isa.RegT1, isa.RegT0, dev.RegNICTxLen)
	// Ethernet header first (two words): broadcast dst plus a fixed
	// locally-administered unicast src 02:00:00:00:00:01, so the switch
	// floods every frame instead of filtering it as a hairpin.
	b.Li(isa.RegT3, 0x0002FFFFFFFFFFFF)
	b.Store(isa.OpSD, isa.RegT3, isa.RegT0, dev.RegNICTxData)
	b.Li(isa.RegT3, 0x0000000001000000)
	b.Store(isa.OpSD, isa.RegT3, isa.RegT0, dev.RegNICTxData)
	b.Li(isa.RegT2, words-2)
	b.Branch(isa.OpBEQ, isa.RegT2, isa.RegZero, "words_done")
	b.Label("word_loop")
	b.Store(isa.OpSD, isa.RegS0, isa.RegT0, dev.RegNICTxData)
	b.I(isa.OpADDI, isa.RegT2, isa.RegT2, -1)
	b.Branch(isa.OpBNE, isa.RegT2, isa.RegZero, "word_loop")
	b.Label("words_done")
	b.Store(isa.OpSD, isa.RegT1, isa.RegT0, dev.RegNICTxSend)
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, 1)
	b.Branch(isa.OpBLTU, isa.RegS0, isa.RegS1, "frame_loop")

	emitMarker(b, 2)
	b.Halt(0)
	emitTrapStubBody(b)
	return b.Finish()
}

// BuildVirtioNetProgram emits a guest transmitting `frames` frames of
// `frameLen` bytes through virtio-net, `batch` frames per kick. Frames are
// contiguous (virtio-net header + payload) single-descriptor chains with a
// broadcast destination: the switch floods every frame instead of filtering
// it as a hairpin.
func BuildVirtioNetProgram(frames, batch, frameLen uint64, slot int) ([]byte, error) {
	// Broadcast dst ff:ff:ff:ff:ff:ff plus a fixed locally-administered
	// unicast src 02:00:00:00:00:01.
	return buildVirtioNetTX(frames, batch, frameLen, slot,
		[6]byte{0x02, 0, 0, 0, 0, 0x01}, [6]byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF})
}

// BuildVirtioNetUnicastProgram is BuildVirtioNetProgram with explicit
// source and destination MACs, so frames steer through the switch FDB to a
// specific peer instead of flooding — the sender half of the M9 dataplane
// storm and the timestamp-ordering differential suite.
func BuildVirtioNetUnicastProgram(frames, batch, frameLen uint64, slot int, src, dst [6]byte) ([]byte, error) {
	return buildVirtioNetTX(frames, batch, frameLen, slot, src, dst)
}

func buildVirtioNetTX(frames, batch, frameLen uint64, slot int, src, dst [6]byte) ([]byte, error) {
	if batch == 0 || frames == 0 || frames%batch != 0 {
		return nil, fmt.Errorf("guest: frames %d not a multiple of batch %d", frames, batch)
	}
	if frameLen < 12 || frameLen > dev.MaxFrameSize {
		return nil, fmt.Errorf("guest: frame length %d out of range", frameLen)
	}
	// The Ethernet header sits past the 12-byte virtio-net header: bytes
	// 12..18 dst, 18..24 src. Emitted as two doubleword stores at buffer
	// offsets 8 and 16 (bytes 8..12 are the virtio-net header's zero tail).
	var hdr [24]byte
	copy(hdr[12:18], dst[:])
	copy(hdr[18:24], src[:])
	hdrW1 := binary.LittleEndian.Uint64(hdr[8:16])
	hdrW2 := binary.LittleEndian.Uint64(hdr[16:24])
	num, err := ringFor(batch, 1)
	if err != nil {
		return nil, err
	}
	descB, availB, usedB, _ := virtio.Layout(ioQueueBase, num)
	devBase := uint64(dev.VirtioBase + slot*dev.VirtioStride)
	bufLen := virtio.NetHeaderSize + frameLen
	bufStride := (bufLen + 63) &^ 63

	b := asm.NewBuilder(gabi.KernelBase)
	emitTrapStub(b)
	emitQueueSetup(b, devBase, virtio.NetTXQueue, num, descB, availB, usedB)
	emitMarker(b, 1)

	b.Li(isa.RegS0, 0) // frames sent
	b.Li(isa.RegS1, frames)
	b.Li(isa.RegS2, 0) // avail idx shadow
	b.Li(isa.RegS5, batch)

	b.Label("batch_loop")
	b.Li(isa.RegS4, 0)
	b.Label("frame_loop")
	// desc[r] = {buffer, bufLen, 0, 0}.
	b.I(isa.OpSLLI, isa.RegT2, isa.RegS4, 4)
	b.Li(isa.RegT3, descB)
	b.R(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT3)
	b.Li(isa.RegT3, bufStride)
	b.R(isa.OpMUL, isa.RegT4, isa.RegS4, isa.RegT3)
	b.Li(isa.RegT3, ioDataBase)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT3)
	// Ethernet header words, then stamp a payload word so the switch sees
	// fresh bytes.
	b.Li(isa.RegT5, hdrW1)
	b.Store(isa.OpSD, isa.RegT5, isa.RegT4, 8)
	b.Li(isa.RegT5, hdrW2)
	b.Store(isa.OpSD, isa.RegT5, isa.RegT4, 16)
	b.Store(isa.OpSD, isa.RegS0, isa.RegT4, 24)
	b.Store(isa.OpSD, isa.RegT4, isa.RegT2, 0)
	b.Li(isa.RegT5, bufLen)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT2, 8)
	b.Store(isa.OpSH, isa.RegZero, isa.RegT2, 12)
	b.Store(isa.OpSH, isa.RegZero, isa.RegT2, 14)
	// avail.ring[s2 & mask] = r.
	b.I(isa.OpANDI, isa.RegT5, isa.RegS2, int64(num-1))
	b.I(isa.OpSLLI, isa.RegT5, isa.RegT5, 1)
	b.Li(isa.RegT3, availB+4)
	b.R(isa.OpADD, isa.RegT5, isa.RegT5, isa.RegT3)
	b.Store(isa.OpSH, isa.RegS4, isa.RegT5, 0)
	b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
	b.I(isa.OpADDI, isa.RegS4, isa.RegS4, 1)
	b.Branch(isa.OpBLTU, isa.RegS4, isa.RegS5, "frame_loop")

	b.Li(isa.RegT3, availB)
	b.Store(isa.OpSH, isa.RegS2, isa.RegT3, 2)
	b.Li(isa.RegT0, devBase)
	b.Li(isa.RegT1, virtio.NetTXQueue)
	b.Store(isa.OpSW, isa.RegT1, isa.RegT0, virtio.RegNotify)
	b.Li(isa.RegT3, usedB)
	b.Label("poll")
	b.Load(isa.OpLHU, isa.RegT4, isa.RegT3, 2)
	b.I(isa.OpANDI, isa.RegT5, isa.RegS2, 0xFFFF)
	b.Branch(isa.OpBNE, isa.RegT4, isa.RegT5, "poll")
	b.Li(isa.RegT5, 1)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT0, virtio.RegIntAck)

	b.R(isa.OpADD, isa.RegS0, isa.RegS0, isa.RegS5)
	b.Branch(isa.OpBLTU, isa.RegS0, isa.RegS1, "batch_loop")

	emitMarker(b, 2)
	b.Halt(0)
	emitTrapStubBody(b)
	return b.Finish()
}

// BuildVirtioNetRXProgram emits a passive receiver: it arms the virtio-net
// RX queue, posts `bufs` device-writable buffers of `bufLen` bytes each,
// kicks once and halts. Frames steered to it land in the posted buffers at
// epoch barriers while the vCPU sits halted — the receiver half of the M9
// dataplane storm and the timestamp-ordering differential suite (interrupts
// on a halted vCPU only set the pending bit, so delivery order is observable
// purely through guest memory).
func BuildVirtioNetRXProgram(bufs, bufLen uint64, slot int) ([]byte, error) {
	if bufs == 0 || bufLen < virtio.NetHeaderSize || bufLen > dev.MaxFrameSize+virtio.NetHeaderSize {
		return nil, fmt.Errorf("guest: %d rx buffers of %d bytes out of range", bufs, bufLen)
	}
	num, err := ringFor(bufs, 1)
	if err != nil {
		return nil, err
	}
	descB, availB, usedB, _ := virtio.Layout(ioQueueBase, num)
	devBase := uint64(dev.VirtioBase + slot*dev.VirtioStride)
	bufStride := (bufLen + 63) &^ 63

	b := asm.NewBuilder(gabi.KernelBase)
	emitTrapStub(b)
	emitQueueSetup(b, devBase, virtio.NetRXQueue, num, descB, availB, usedB)

	b.Li(isa.RegS4, 0) // buffer index
	b.Li(isa.RegS5, bufs)
	b.Label("post_loop")
	// desc[i] = {ioDataBase + i*stride, bufLen, WRITE, 0}.
	b.I(isa.OpSLLI, isa.RegT2, isa.RegS4, 4)
	b.Li(isa.RegT3, descB)
	b.R(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT3)
	b.Li(isa.RegT3, bufStride)
	b.R(isa.OpMUL, isa.RegT4, isa.RegS4, isa.RegT3)
	b.Li(isa.RegT3, ioDataBase)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT3)
	b.Store(isa.OpSD, isa.RegT4, isa.RegT2, 0)
	b.Li(isa.RegT5, bufLen)
	b.Store(isa.OpSW, isa.RegT5, isa.RegT2, 8)
	b.Li(isa.RegT5, uint64(virtio.DescWrite))
	b.Store(isa.OpSH, isa.RegT5, isa.RegT2, 12)
	b.Store(isa.OpSH, isa.RegZero, isa.RegT2, 14)
	// avail.ring[i] = i.
	b.I(isa.OpSLLI, isa.RegT5, isa.RegS4, 1)
	b.Li(isa.RegT3, availB+4)
	b.R(isa.OpADD, isa.RegT5, isa.RegT5, isa.RegT3)
	b.Store(isa.OpSH, isa.RegS4, isa.RegT5, 0)
	b.I(isa.OpADDI, isa.RegS4, isa.RegS4, 1)
	b.Branch(isa.OpBLTU, isa.RegS4, isa.RegS5, "post_loop")

	// Publish all buffers, kick once, halt.
	b.Li(isa.RegT3, availB)
	b.Store(isa.OpSH, isa.RegS5, isa.RegT3, 2)
	b.Li(isa.RegT0, devBase)
	b.Li(isa.RegT1, virtio.NetRXQueue)
	b.Store(isa.OpSW, isa.RegT1, isa.RegT0, virtio.RegNotify)
	b.Halt(0)
	emitTrapStubBody(b)
	return b.Finish()
}
