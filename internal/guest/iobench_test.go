package guest

import (
	"testing"

	"govisor/internal/core"
	"govisor/internal/dev"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/storage"
	"govisor/internal/vcpu"
	"govisor/internal/vnet"
)

func ioVM(t *testing.T, mode core.Mode) *core.VM {
	t.Helper()
	pool := mem.NewPool(2 * testRAM >> isa.PageShift)
	vm, err := core.NewVM(pool, core.Config{Name: "io", Mode: mode, MemBytes: testRAM})
	if err != nil {
		t.Fatal(err)
	}
	return vm
}

func runIO(t *testing.T, vm *core.VM, img []byte) {
	t.Helper()
	if err := vm.Boot(img); err != nil {
		t.Fatal(err)
	}
	if st := vm.RunToHalt(runBudget); st != core.StateHalted {
		t.Fatalf("state %v err %v pc %#x", st, vm.Err, vm.CPU.PC)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("halt code %#x", vm.HaltCode)
	}
}

func TestGuestPIODiskWritesLand(t *testing.T) {
	vm := ioVM(t, core.ModeHW)
	img := storage.NewRaw(256)
	disk, err := vm.AttachPIODisk(img)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := BuildPIODiskProgram(16, true)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, vm, prog)
	if disk.SectorsWritten != 16 {
		t.Fatalf("sectors written = %d", disk.SectorsWritten)
	}
	// The guest stores the sector number in every doubleword.
	buf := make([]byte, storage.SectorSize)
	img.ReadSector(5, buf)
	if buf[0] != 5 {
		t.Fatalf("sector 5 content = %d", buf[0])
	}
	// Each sector costs ~67 MMIO exits (64 data + sector + 2 cmd + status).
	exits := vm.CPU.Stats.Exits[vcpu.ExitMMIO]
	if exits < 16*66 {
		t.Fatalf("mmio exits = %d, want ≥ %d", exits, 16*66)
	}
}

func TestGuestPIODiskReadsBack(t *testing.T) {
	vm := ioVM(t, core.ModeHW)
	img := storage.NewRaw(256)
	if _, err := vm.AttachPIODisk(img); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildPIODiskProgram(8, false)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, vm, prog)
}

func TestGuestVirtioBlkBatching(t *testing.T) {
	run := func(batch uint64) (*core.VM, uint64, uint64) {
		vm := ioVM(t, core.ModeHW)
		img := storage.NewRaw(4096)
		blk, mmio, err := vm.AttachVirtioBlk(img)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := BuildVirtioBlkProgram(64, batch, 0)
		if err != nil {
			t.Fatal(err)
		}
		runIO(t, vm, prog)
		if blk.SectorsWritten != 64 {
			t.Fatalf("batch %d: sectors = %d (errors %d)", batch, blk.SectorsWritten, blk.Errors)
		}
		return vm, mmio.Notifies, vm.CPU.Stats.Exits[vcpu.ExitMMIO]
	}
	_, kicks1, exits1 := run(1)
	_, kicks16, exits16 := run(16)
	if kicks1 != 64 || kicks16 != 4 {
		t.Fatalf("kicks: %d/%d", kicks1, kicks16)
	}
	if exits16 >= exits1 {
		t.Fatalf("batching should cut exits: %d vs %d", exits16, exits1)
	}
}

func TestGuestVirtioBlkDataIntegrity(t *testing.T) {
	vm := ioVM(t, core.ModeHW)
	img := storage.NewRaw(4096)
	if _, _, err := vm.AttachVirtioBlk(img); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildVirtioBlkProgram(32, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, vm, prog)
	// Every status byte must be OK (0).
	for i := uint64(0); i < 8; i++ {
		v, f := vm.Mem.ReadUint(ioStatusBase+i, 1)
		if f != nil || v != 0 {
			t.Fatalf("status[%d] = %d (%v)", i, v, f)
		}
	}
}

func TestGuestVirtioBeatsPIO(t *testing.T) {
	const sectors = 64
	pio := ioVM(t, core.ModeHW)
	if _, err := pio.AttachPIODisk(storage.NewRaw(4096)); err != nil {
		t.Fatal(err)
	}
	prog, _ := BuildPIODiskProgram(sectors, true)
	runIO(t, pio, prog)

	vio := ioVM(t, core.ModeHW)
	if _, _, err := vio.AttachVirtioBlk(storage.NewRaw(4096)); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildVirtioBlkProgram(sectors, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, vio, prog)

	cp := regionCycles(t, pio)
	cv := regionCycles(t, vio)
	if cv*3 > cp {
		t.Fatalf("virtio (%d cycles) should be ≥3× faster than PIO (%d)", cv, cp)
	}
}

func TestGuestRegNICTransmits(t *testing.T) {
	vm := ioVM(t, core.ModeHW)
	sw := vnet.NewSwitch()
	nic, err := vm.AttachRegNIC(sw.NewPort())
	if err != nil {
		t.Fatal(err)
	}
	sink := sw.NewPort()
	var got int
	sink.SetReceiver(func([]byte) { got++ })
	prog, err := BuildRegNICProgram(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, vm, prog)
	if nic.TxFrames != 10 || got != 10 {
		t.Fatalf("tx=%d delivered=%d", nic.TxFrames, got)
	}
}

func TestGuestVirtioNetTransmits(t *testing.T) {
	vm := ioVM(t, core.ModeHW)
	sw := vnet.NewSwitch()
	n, mmio, err := vm.AttachVirtioNet(sw.NewPort())
	if err != nil {
		t.Fatal(err)
	}
	sink := sw.NewPort()
	var got int
	sink.SetReceiver(func([]byte) { got++ })
	prog, err := BuildVirtioNetProgram(32, 8, 64, 0)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, vm, prog)
	if n.TxFrames != 32 || got != 32 {
		t.Fatalf("tx=%d delivered=%d", n.TxFrames, got)
	}
	if mmio.Notifies != 4 {
		t.Fatalf("kicks = %d", mmio.Notifies)
	}
}

func TestGuestVirtioNetBeatsRegNIC(t *testing.T) {
	const frames, flen = 64, 256
	reg := ioVM(t, core.ModeHW)
	sw1 := vnet.NewSwitch()
	if _, err := reg.AttachRegNIC(sw1.NewPort()); err != nil {
		t.Fatal(err)
	}
	prog, _ := BuildRegNICProgram(frames, flen)
	runIO(t, reg, prog)

	vio := ioVM(t, core.ModeHW)
	sw2 := vnet.NewSwitch()
	if _, _, err := vio.AttachVirtioNet(sw2.NewPort()); err != nil {
		t.Fatal(err)
	}
	prog, err := BuildVirtioNetProgram(frames, 16, flen, 0)
	if err != nil {
		t.Fatal(err)
	}
	runIO(t, vio, prog)

	cr, cv := regionCycles(t, reg), regionCycles(t, vio)
	if cv*2 > cr {
		t.Fatalf("virtio-net (%d) should be ≥2× faster than reg NIC (%d)", cv, cr)
	}
}

func TestIOBenchArgValidation(t *testing.T) {
	if _, err := BuildVirtioBlkProgram(10, 3, 0); err == nil {
		t.Error("non-divisible batch accepted")
	}
	if _, err := BuildVirtioBlkProgram(0, 1, 0); err == nil {
		t.Error("zero total accepted")
	}
	if _, err := BuildRegNICProgram(1, 4); err == nil {
		t.Error("runt frame accepted")
	}
	if _, err := BuildVirtioNetProgram(8, 4, 99999, 0); err == nil {
		t.Error("giant frame accepted")
	}
	if _, err := BuildVirtioBlkProgram(4096, 4096, 0); err == nil {
		t.Error("oversized ring accepted")
	}
}

var _ = dev.SectorSize // keep dev import symmetrical with builders
