package guest

import (
	"testing"

	"govisor/internal/core"
	"govisor/internal/dev"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/vcpu"
)

const (
	testRAM   = 8 << 20 // 8 MiB
	testPool  = 16 << 20 >> isa.PageShift
	runBudget = 2_000_000_000
)

func TestIntCtlClaimAddrMatchesDev(t *testing.T) {
	if intCtlClaimAddr != dev.IntCtlBase+dev.IntCtlClaim {
		t.Fatalf("intCtlClaimAddr %#x != dev %#x", intCtlClaimAddr, dev.IntCtlBase+dev.IntCtlClaim)
	}
}

func TestKernelAssembles(t *testing.T) {
	img, err := BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	if len(img) < 500 {
		t.Fatalf("kernel suspiciously small: %d bytes", len(img))
	}
}

// bootAndRun builds a VM in the given mode, applies the workload, boots the
// shared kernel and runs to halt.
func bootAndRun(t *testing.T, mode core.Mode, w Workload) *core.VM {
	t.Helper()
	vm := bootVM(t, mode, w)
	state := vm.RunToHalt(runBudget)
	if state != core.StateHalted {
		t.Fatalf("[%v] final state %v (err=%v, pc=%#x, halt=%#x)",
			mode, state, vm.Err, vm.CPU.PC, vm.HaltCode)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("[%v] guest panicked: halt=%#x cause=%d tval=%#x",
			mode, vm.HaltCode, vm.Result(gabi.PResult3), vm.Result(gabi.PResult2))
	}
	return vm
}

func bootVM(t *testing.T, mode core.Mode, w Workload) *core.VM {
	return bootVMCfg(t, mode, w, nil)
}

// bootVMCfg is bootVM with a config tweak hook (differential tests toggle
// NoICache through it).
func bootVMCfg(t *testing.T, mode core.Mode, w Workload, tweak func(*core.Config)) *core.VM {
	t.Helper()
	kernel, err := BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	pool := mem.NewPool(testPool)
	cfg := core.Config{Name: "t-" + mode.String(), Mode: mode, MemBytes: testRAM}
	if tweak != nil {
		tweak(&cfg)
	}
	vm, err := core.NewVM(pool, cfg)
	if err != nil {
		t.Fatal(err)
	}
	w.Apply(vm)
	if err := vm.Boot(kernel); err != nil {
		t.Fatal(err)
	}
	return vm
}

var allModes = []core.Mode{core.ModeNative, core.ModeTrap, core.ModePara, core.ModeHW}

func TestComputeAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			vm := bootAndRun(t, mode, Compute(100, 10))
			// 100 iterations × 10 adds × 3 = 3000.
			if got := vm.Result(gabi.PResult0); got != 3000 {
				t.Fatalf("result = %d", got)
			}
		})
	}
}

func TestComputeSlowdownOrdering(t *testing.T) {
	// With privileged ops in the loop, trap-and-emulate must be the
	// slowest and native the fastest; hw-assist close to native.
	cycles := map[core.Mode]uint64{}
	for _, mode := range allModes {
		vm := bootAndRun(t, mode, Compute(200, 20))
		cycles[mode] = regionCycles(t, vm)
	}
	if !(cycles[core.ModeNative] <= cycles[core.ModeHW]) {
		t.Errorf("native %d > hw %d", cycles[core.ModeNative], cycles[core.ModeHW])
	}
	if !(cycles[core.ModeHW] < cycles[core.ModeTrap]) {
		t.Errorf("hw %d >= trap %d", cycles[core.ModeHW], cycles[core.ModeTrap])
	}
	if !(cycles[core.ModeNative] < cycles[core.ModeTrap]) {
		t.Errorf("native %d >= trap %d", cycles[core.ModeNative], cycles[core.ModeTrap])
	}
}

// regionCycles extracts the cycles between markers 1 and 2.
func regionCycles(t *testing.T, vm *core.VM) uint64 {
	t.Helper()
	var start, end uint64
	for _, m := range vm.Markers {
		switch m.ID {
		case 1:
			start = m.Cycles
		case 2:
			end = m.Cycles
		}
	}
	if start == 0 || end <= start {
		t.Fatalf("markers missing: %+v", vm.Markers)
	}
	return end - start
}

func TestMemTouchAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			vm := bootAndRun(t, mode, MemTouch(3, 64, 50))
			if vm.Mem.DirtySets == 0 {
				t.Error("memtouch with writes should dirty pages")
			}
		})
	}
}

func TestMemTouchNestedPaysMoreThanShadowBeyondTLB(t *testing.T) {
	// Working set far beyond TLB reach (256 entries): nested paging pays
	// 2-D walks on every miss, shadow pays 1-D once its one-time fill exits
	// are amortized — so run enough iterations to reach steady state.
	const pages = 1024
	shadow := bootAndRun(t, core.ModeTrap, MemTouch(24, pages, 0))
	nested := bootAndRun(t, core.ModeHW, MemTouch(24, pages, 0))
	cs, cn := regionCycles(t, shadow), regionCycles(t, nested)
	if cn <= cs {
		t.Errorf("nested %d should exceed shadow %d at %d pages", cn, cs, pages)
	}
}

func TestPTChurnAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			vm := bootAndRun(t, mode, PTChurn(2, false))
			switch mode {
			case core.ModeTrap:
				if vm.Stats.PTWriteEmuls == 0 {
					t.Error("trap-mode churn must emulate PT writes")
				}
			case core.ModePara:
				if vm.Stats.ParaMaps == 0 {
					t.Error("para-mode churn must issue MMU hypercalls")
				}
			}
		})
	}
}

func TestPTChurnShadowSlowerThanNested(t *testing.T) {
	trap := bootAndRun(t, core.ModeTrap, PTChurn(4, false))
	hw := bootAndRun(t, core.ModeHW, PTChurn(4, false))
	ct, ch := regionCycles(t, trap), regionCycles(t, hw)
	if ct <= ch {
		t.Errorf("shadow churn %d should exceed nested churn %d", ct, ch)
	}
}

func TestPTChurnParaBatchingHelps(t *testing.T) {
	un := bootAndRun(t, core.ModePara, PTChurn(4, false))
	ba := bootAndRun(t, core.ModePara, PTChurn(4, true))
	cu, cb := regionCycles(t, un), regionCycles(t, ba)
	if cb >= cu {
		t.Errorf("batched %d should beat unbatched %d", cb, cu)
	}
	if un.Stats.ParaBatches != 0 || ba.Stats.ParaBatches == 0 {
		t.Errorf("batch stats: un=%d ba=%d", un.Stats.ParaBatches, ba.Stats.ParaBatches)
	}
}

func TestSyscallAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			vm := bootAndRun(t, mode, Syscall(50))
			if got := vm.Result(gabi.PResult0); got != 50 {
				t.Fatalf("syscalls = %d", got)
			}
			ecalls := vm.CPU.Stats.Exits[vcpu.ExitEcall]
			switch mode {
			case core.ModeNative, core.ModeHW:
				// Syscalls vector directly; only the markers exit.
				if ecalls > 4 {
					t.Errorf("direct modes should not exit per syscall: %d", ecalls)
				}
			default:
				if ecalls < 50 {
					t.Errorf("deprivileged modes must exit per syscall: %d", ecalls)
				}
			}
		})
	}
}

func TestSyscallNativeCheaperThanTrap(t *testing.T) {
	nat := bootAndRun(t, core.ModeNative, Syscall(200))
	trp := bootAndRun(t, core.ModeTrap, Syscall(200))
	cn, ct := regionCycles(t, nat), regionCycles(t, trp)
	if cn >= ct {
		t.Errorf("native syscalls %d should be cheaper than trapped %d", cn, ct)
	}
}

func TestCSRLoopAllModes(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			vm := bootAndRun(t, mode, CSRLoop(100))
			priv := vm.CPU.Stats.Exits[vcpu.ExitPriv]
			switch mode {
			case core.ModeTrap, core.ModePara:
				if priv < 200 {
					t.Errorf("deprivileged CSR loop should trap ≥200 times: %d", priv)
				}
			default:
				if priv != 0 {
					t.Errorf("privileged modes must not exit on CSRs: %d", priv)
				}
			}
		})
	}
}

func TestDirtyWorkloadDirtiesPages(t *testing.T) {
	vm := bootAndRun(t, core.ModeHW, Dirty(5, 32, 10))
	if got := vm.Result(gabi.PResult0); got != 5 {
		t.Fatalf("rounds = %d", got)
	}
	dirty := vm.Mem.CollectDirty(nil)
	if len(dirty) < 32 {
		t.Fatalf("dirty pages = %d", len(dirty))
	}
}

func TestIdleWorkloadTimerTicks(t *testing.T) {
	for _, mode := range allModes {
		t.Run(mode.String(), func(t *testing.T) {
			vm := bootAndRun(t, mode, Idle(5, 100_000))
			if got := vm.Result(gabi.PResult0); got != 5 {
				t.Fatalf("ticks = %d", got)
			}
			// Latency accumulator should be sane (≥ 0, bounded).
			lat := vm.Result(gabi.PResult1)
			if lat > 100_000*5*10 {
				t.Fatalf("latency accumulator = %d", lat)
			}
		})
	}
}

func TestGuestConsoleOutput(t *testing.T) {
	// The marker hypercalls exercise the hypercall path; check putchar too
	// by running compute and verifying the UART stays silent (no stray
	// output) — then the example programs print explicitly.
	vm := bootAndRun(t, core.ModeNative, Compute(1, 0))
	if vm.Output() != "" {
		t.Fatalf("unexpected console output %q", vm.Output())
	}
}

func TestDemandPagingFillsOnHeapTouch(t *testing.T) {
	// Lazy memory: the heap pages are unmapped until the workload touches
	// them; the VMM demand-fills.
	vm := bootAndRun(t, core.ModeHW, MemTouch(1, 128, 0))
	if vm.Stats.DemandFills < 100 {
		t.Fatalf("demand fills = %d", vm.Stats.DemandFills)
	}
}

func TestShadowEngineActiveOnlyInTrapMode(t *testing.T) {
	trap := bootAndRun(t, core.ModeTrap, MemTouch(1, 16, 0))
	if trap.Stats.ShadowFills == 0 {
		t.Error("trap mode should fill shadow entries")
	}
	hw := bootAndRun(t, core.ModeHW, MemTouch(1, 16, 0))
	if hw.Stats.ShadowFills != 0 {
		t.Error("hw mode must not touch the shadow engine")
	}
}
