// Package guest generates the guest software run inside govisor VMs: a
// small kernel, written in GV64 assembly through the asm.Builder, that
// boots under every virtualization mode, plus the parameterized workloads
// the experiments drive.
//
// One kernel binary serves all modes: at boot it reads the CSRVenv
// discovery register and picks mode-appropriate strategies (direct
// page-table stores vs. MMU hypercalls), exactly like a paravirtualized
// Linux deciding between native and pv-ops paths.
//
// Kernel register conventions (callee-owned, never touched by user code):
//
//	s11 = parameter block base        s10 = venv
//	s9  = heap base (bytes)           s8  = scratch
//	s0/s1 = syscall count/limit       s2..s7 = timer bookkeeping
package guest

import (
	"fmt"

	"govisor/internal/asm"
	"govisor/internal/gabi"
	"govisor/internal/isa"
)

// PTE flag constants the kernel materializes for churn mappings.
const (
	churnFlags = isa.PTEValid | isa.PTERead | isa.PTEWrite | isa.PTEAcc | isa.PTEDirty
	userFlags  = isa.PTEValid | isa.PTERead | isa.PTEExec | isa.PTEUser | isa.PTEAcc
)

// BuildKernel assembles the universal guest kernel. The workload it runs is
// selected at boot through the parameter block (gabi.PWorkload).
func BuildKernel() ([]byte, error) {
	b := asm.NewBuilder(gabi.KernelBase)

	// ---- entry ----
	b.Mv(isa.RegS11, isa.RegA0) // param base
	b.Csrr(isa.RegS10, isa.CSRVenv)
	b.La(isa.RegT0, "trap_vector")
	b.Csrw(isa.CSRStvec, isa.RegT0)

	// Heap base (bytes) from the page-number parameter.
	loadParam(b, isa.RegS9, gabi.PHeapBase)
	b.I(isa.OpSLLI, isa.RegS9, isa.RegS9, isa.PageShift)

	// Enable paging with the VMM-prepared identity tables.
	loadParam(b, isa.RegT0, gabi.PSatp)
	b.Csrw(isa.CSRSatp, isa.RegT0)
	b.SfenceVMA(isa.RegZero, isa.RegZero)

	// Benchmark region start marker.
	hcall1(b, gabi.HCMarker, 1)

	// ---- workload dispatch ----
	loadParam(b, isa.RegT0, gabi.PWorkload)
	for _, w := range []struct {
		id    uint64
		label string
	}{
		{gabi.WCompute, "w_compute"},
		{gabi.WMemTouch, "w_memtouch"},
		{gabi.WPTChurn, "w_ptchurn"},
		{gabi.WSyscall, "w_syscall"},
		{gabi.WCSR, "w_csr"},
		{gabi.WDirty, "w_dirty"},
		{gabi.WIdle, "w_idle"},
	} {
		b.Li(isa.RegT1, w.id)
		b.Branch(isa.OpBEQ, isa.RegT0, isa.RegT1, w.label)
	}
	b.Halt(0xBAD) // unknown workload

	// Common epilogue: result0 in a0, then marker + halt.
	b.Label("done")
	storeParam(b, gabi.PResult0, isa.RegA0)
	hcall1(b, gabi.HCMarker, 2)
	b.Halt(0)

	emitCompute(b)
	emitMemTouch(b)
	emitPTChurn(b)
	emitSyscall(b)
	emitCSR(b)
	emitDirty(b)
	emitIdle(b)
	emitTrapVector(b)

	img, err := b.Finish()
	if err != nil {
		return nil, fmt.Errorf("guest: assembling kernel: %w", err)
	}
	return img, nil
}

// loadParam emits rd ← params[slot].
func loadParam(b *asm.Builder, rd uint8, slot int) {
	b.Load(isa.OpLD, rd, isa.RegS11, int64(slot*8))
}

// storeParam emits params[slot] ← rs.
func storeParam(b *asm.Builder, slot int, rs uint8) {
	b.Store(isa.OpSD, rs, isa.RegS11, int64(slot*8))
}

// hcall1 emits a one-argument hypercall, clobbering a0/a7.
func hcall1(b *asm.Builder, nr uint64, a0 uint64) {
	b.Li(isa.RegA0, a0)
	b.Li(isa.RegA7, nr)
	b.Ecall()
}

// emitCompute: pure ALU loop with an optional privileged op every PArg0
// ALU operations (PArg0 = 0 disables them). Drives T1/F3.
//
//	for i = iters; i > 0; i-- {
//	    for j = period; j > 0; j-- { t2 += t3 }
//	    if period > 0 { csrw sscratch, t2 }
//	}
func emitCompute(b *asm.Builder) {
	b.Label("w_compute")
	loadParam(b, isa.RegT0, gabi.PIterations) // i
	loadParam(b, isa.RegT4, gabi.PArg0)       // period
	b.Li(isa.RegT2, 0)
	b.Li(isa.RegT3, 3)
	b.Label("wc_outer")
	b.Branch(isa.OpBEQ, isa.RegT0, isa.RegZero, "wc_done")
	b.Mv(isa.RegT1, isa.RegT4)
	b.Label("wc_inner")
	b.Branch(isa.OpBEQ, isa.RegT1, isa.RegZero, "wc_priv")
	b.R(isa.OpADD, isa.RegT2, isa.RegT2, isa.RegT3)
	b.I(isa.OpADDI, isa.RegT1, isa.RegT1, -1)
	b.J("wc_inner")
	b.Label("wc_priv")
	b.Branch(isa.OpBEQ, isa.RegT4, isa.RegZero, "wc_next")
	b.Csrw(isa.CSRSscratch, isa.RegT2) // the privileged op under test
	b.Label("wc_next")
	b.I(isa.OpADDI, isa.RegT0, isa.RegT0, -1)
	b.J("wc_outer")
	b.Label("wc_done")
	b.Mv(isa.RegA0, isa.RegT2)
	b.J("done")
}

// emitMemTouch: walk a working set of PWorkingSet pages PIterations times,
// loading each page and storing on a PWriteFrac percentage of touches.
// Drives F4 (TLB pressure: shadow vs nested) and T10.
func emitMemTouch(b *asm.Builder) {
	b.Label("w_memtouch")
	loadParam(b, isa.RegT0, gabi.PIterations)
	loadParam(b, isa.RegT1, gabi.PWorkingSet) // pages
	loadParam(b, isa.RegT2, gabi.PWriteFrac)  // percent
	b.Li(isa.RegA0, 0)                        // checksum
	b.Li(isa.RegS8, 100)
	b.Label("wm_outer")
	b.Branch(isa.OpBEQ, isa.RegT0, isa.RegZero, "wm_done")
	b.Li(isa.RegT3, 0) // page index
	b.Label("wm_page")
	b.Branch(isa.OpBGEU, isa.RegT3, isa.RegT1, "wm_next_iter")
	// addr = heap + page<<12
	b.I(isa.OpSLLI, isa.RegT4, isa.RegT3, isa.PageShift)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegS9)
	b.Load(isa.OpLD, isa.RegT5, isa.RegT4, 0)
	b.R(isa.OpADD, isa.RegA0, isa.RegA0, isa.RegT5)
	// write if (page*7 + iter) % 100 < writeFrac — cheap deterministic mix.
	b.Li(isa.RegT6, 7)
	b.R(isa.OpMUL, isa.RegT6, isa.RegT3, isa.RegT6)
	b.R(isa.OpADD, isa.RegT6, isa.RegT6, isa.RegT0)
	b.R(isa.OpREMU, isa.RegT6, isa.RegT6, isa.RegS8)
	b.Branch(isa.OpBGEU, isa.RegT6, isa.RegT2, "wm_skip_write")
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, 1)
	b.Store(isa.OpSD, isa.RegT5, isa.RegT4, 0)
	b.Label("wm_skip_write")
	b.I(isa.OpADDI, isa.RegT3, isa.RegT3, 1)
	b.J("wm_page")
	b.Label("wm_next_iter")
	b.I(isa.OpADDI, isa.RegT0, isa.RegT0, -1)
	b.J("wm_outer")
	b.Label("wm_done")
	b.J("done")
}

// emitPTChurn: map/touch/unmap PChurnPages pages in the churn window,
// PIterations times. Mode dispatch:
//
//   - venv != para: write the leaf PTE directly and SFENCE (under ModeTrap
//     every store traps to the shadow engine — the cost under test).
//   - venv == para, PArg0 == 0: one HCMMUMap/HCMMUUnmap hypercall per page.
//   - venv == para, PArg0 != 0: build a batch array and issue one
//     HCMMUBatch per iteration (ablation A1).
//
// Drives F5.
func emitPTChurn(b *asm.Builder) {
	b.Label("w_ptchurn")
	loadParam(b, isa.RegT0, gabi.PIterations)
	b.Li(isa.RegA0, 0) // checksum
	b.Label("wp_outer")
	b.Branch(isa.OpBEQ, isa.RegT0, isa.RegZero, "wp_done")

	b.Li(isa.RegT1, isa.VEnvPara)
	b.Branch(isa.OpBEQ, isa.RegS10, isa.RegT1, "wp_para")

	// --- direct PTE stores (native / hw / trap) ---
	loadParam(b, isa.RegT2, gabi.PChurnPages) // count
	loadParam(b, isa.RegT3, gabi.PChurnPTE)   // PTE slot cursor
	loadParam(b, isa.RegT4, gabi.PChurnVA)    // va cursor
	b.Li(isa.RegT5, 0)                        // index
	b.Label("wp_direct_loop")
	b.Branch(isa.OpBGEU, isa.RegT5, isa.RegT2, "wp_direct_unmap")
	// pte = (heapPA >> 2) | flags, heap page reused for every mapping.
	b.I(isa.OpSRLI, isa.RegT6, isa.RegS9, 2)
	b.I(isa.OpORI, isa.RegT6, isa.RegT6, int64(churnFlags))
	b.Store(isa.OpSD, isa.RegT6, isa.RegT3, 0) // PTE write (traps under shadow)
	b.SfenceVMA(isa.RegT4, isa.RegZero)
	b.Load(isa.OpLD, isa.RegT6, isa.RegT4, 0) // touch through the mapping
	b.R(isa.OpADD, isa.RegA0, isa.RegA0, isa.RegT6)
	b.I(isa.OpADDI, isa.RegT3, isa.RegT3, 8)
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT6)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, 1)
	b.J("wp_direct_loop")
	// Unmap pass: zero the slots.
	b.Label("wp_direct_unmap")
	loadParam(b, isa.RegT3, gabi.PChurnPTE)
	loadParam(b, isa.RegT4, gabi.PChurnVA)
	b.Li(isa.RegT5, 0)
	b.Label("wp_direct_unmap_loop")
	b.Branch(isa.OpBGEU, isa.RegT5, isa.RegT2, "wp_iter_end")
	b.Store(isa.OpSD, isa.RegZero, isa.RegT3, 0)
	b.SfenceVMA(isa.RegT4, isa.RegZero)
	b.I(isa.OpADDI, isa.RegT3, isa.RegT3, 8)
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT6)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, 1)
	b.J("wp_direct_unmap_loop")

	// --- paravirtual path ---
	b.Label("wp_para")
	loadParam(b, isa.RegT1, gabi.PArg0)
	b.Branch(isa.OpBNE, isa.RegT1, isa.RegZero, "wp_para_batch")
	// Unbatched: hypercall per page.
	loadParam(b, isa.RegT2, gabi.PChurnPages)
	loadParam(b, isa.RegT4, gabi.PChurnVA)
	b.Li(isa.RegT5, 0)
	b.Label("wp_para_loop")
	b.Branch(isa.OpBGEU, isa.RegT5, isa.RegT2, "wp_para_unmap")
	b.Mv(isa.RegA0, isa.RegT4)
	b.Mv(isa.RegA1, isa.RegS9)
	b.Li(isa.RegA2, uint64(churnFlags))
	b.Li(isa.RegA7, gabi.HCMMUMap)
	b.Ecall()
	b.Load(isa.OpLD, isa.RegT6, isa.RegT4, 0)
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT6)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, 1)
	b.J("wp_para_loop")
	b.Label("wp_para_unmap")
	loadParam(b, isa.RegT4, gabi.PChurnVA)
	b.Li(isa.RegT5, 0)
	b.Label("wp_para_unmap_loop")
	b.Branch(isa.OpBGEU, isa.RegT5, isa.RegT2, "wp_iter_end")
	b.Mv(isa.RegA0, isa.RegT4)
	b.Li(isa.RegA7, gabi.HCMMUUnmap)
	b.Ecall()
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT6)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, 1)
	b.J("wp_para_unmap_loop")

	// Batched: write {va,pa,flags} triples into the heap scratch area
	// (second heap page) and issue one HCMMUBatch.
	b.Label("wp_para_batch")
	loadParam(b, isa.RegT2, gabi.PChurnPages)
	loadParam(b, isa.RegT4, gabi.PChurnVA)
	b.I(isa.OpADDI, isa.RegT3, isa.RegS9, 0)
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegT3, isa.RegT3, isa.RegT6) // entries at heap+4K
	b.Li(isa.RegT5, 0)
	b.Label("wp_batch_fill")
	b.Branch(isa.OpBGEU, isa.RegT5, isa.RegT2, "wp_batch_call")
	b.Store(isa.OpSD, isa.RegT4, isa.RegT3, 0) // va
	b.Store(isa.OpSD, isa.RegS9, isa.RegT3, 8) // pa (heap page 0)
	b.Li(isa.RegT6, uint64(churnFlags))
	b.Store(isa.OpSD, isa.RegT6, isa.RegT3, 16)
	b.I(isa.OpADDI, isa.RegT3, isa.RegT3, gabi.BatchEntrySize)
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT6)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, 1)
	b.J("wp_batch_fill")
	b.Label("wp_batch_call")
	b.I(isa.OpADDI, isa.RegA0, isa.RegS9, 0)
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegA0, isa.RegA0, isa.RegT6)
	b.Mv(isa.RegA1, isa.RegT2)
	b.Li(isa.RegA7, gabi.HCMMUBatch)
	b.Ecall()
	// Touch, then unmap each page individually.
	loadParam(b, isa.RegT4, gabi.PChurnVA)
	b.Li(isa.RegT5, 0)
	b.Label("wp_batch_touch")
	b.Branch(isa.OpBGEU, isa.RegT5, isa.RegT2, "wp_para_unmap")
	b.Load(isa.OpLD, isa.RegT6, isa.RegT4, 0)
	b.Li(isa.RegT6, isa.PageSize)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegT6)
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, 1)
	b.J("wp_batch_touch")

	b.Label("wp_iter_end")
	b.I(isa.OpADDI, isa.RegT0, isa.RegT0, -1)
	b.J("wp_outer")
	b.Label("wp_done")
	b.J("done")
}

// emitSyscall: map a user page in the churn window, drop to user mode, and
// count PIterations syscall round trips (the trap vector counts in s0 and
// halts at s1). Drives the T1 syscall row and F3.
func emitSyscall(b *asm.Builder) {
	b.Label("w_syscall")
	b.Li(isa.RegS0, 0) // syscall count
	loadParam(b, isa.RegS1, gabi.PIterations)

	// Write the user program into heap page 0:
	//	loop: ecall; jal zero, -4
	b.Li(isa.RegT1, uint64(isa.Encode(isa.Inst{Op: isa.OpECALL})))
	b.Store(isa.OpSW, isa.RegT1, isa.RegS9, 0)
	b.Li(isa.RegT1, uint64(isa.Encode(isa.Inst{Op: isa.OpJAL, Rd: 0, Imm: -4})))
	b.Store(isa.OpSW, isa.RegT1, isa.RegS9, 4)

	// Map churnVA → heap page 0 as a user page.
	loadParam(b, isa.RegT4, gabi.PChurnVA)
	b.Li(isa.RegT1, isa.VEnvPara)
	b.Branch(isa.OpBEQ, isa.RegS10, isa.RegT1, "ws_para_map")
	loadParam(b, isa.RegT3, gabi.PChurnPTE)
	b.I(isa.OpSRLI, isa.RegT6, isa.RegS9, 2)
	b.I(isa.OpORI, isa.RegT6, isa.RegT6, int64(userFlags))
	b.Store(isa.OpSD, isa.RegT6, isa.RegT3, 0)
	b.SfenceVMA(isa.RegT4, isa.RegZero)
	b.J("ws_enter_user")
	b.Label("ws_para_map")
	b.Mv(isa.RegA0, isa.RegT4)
	b.Mv(isa.RegA1, isa.RegS9)
	b.Li(isa.RegA2, uint64(userFlags))
	b.Li(isa.RegA7, gabi.HCMMUMap)
	b.Ecall()

	// Drop to user mode at the churn VA.
	b.Label("ws_enter_user")
	loadParam(b, isa.RegT4, gabi.PChurnVA)
	b.Csrw(isa.CSRSepc, isa.RegT4)
	b.Li(isa.RegT1, 0) // SPP=0 (user), SIE=0
	b.Csrw(isa.CSRSstatus, isa.RegT1)
	b.Sret()
	// Unreachable: the trap vector halts after s1 syscalls.

	// emitSyscall has no fallthrough to done.
}

// emitCSR: PIterations privileged CSR write+read pairs. Drives T1.
func emitCSR(b *asm.Builder) {
	b.Label("w_csr")
	loadParam(b, isa.RegT0, gabi.PIterations)
	b.Li(isa.RegT2, 0)
	b.Label("wr_loop")
	b.Branch(isa.OpBEQ, isa.RegT0, isa.RegZero, "wr_done")
	b.Csrw(isa.CSRSscratch, isa.RegT0)
	b.Csrr(isa.RegT2, isa.CSRSscratch)
	b.I(isa.OpADDI, isa.RegT0, isa.RegT0, -1)
	b.J("wr_loop")
	b.Label("wr_done")
	b.Mv(isa.RegA0, isa.RegT2)
	b.J("done")
}

// emitDirty: dirty PWorkingSet pages per round with PArg0 ALU ops of think
// time between page writes; PIterations rounds (0 = run forever). The
// migration experiments run this as the background mutator. Result0 counts
// completed rounds.
func emitDirty(b *asm.Builder) {
	b.Label("w_dirty")
	loadParam(b, isa.RegT0, gabi.PIterations)
	loadParam(b, isa.RegT1, gabi.PWorkingSet)
	loadParam(b, isa.RegT2, gabi.PArg0) // think ops between writes
	b.Li(isa.RegA0, 0)                  // rounds completed
	b.Label("wd_outer")
	b.Li(isa.RegT3, 0) // page index
	b.Label("wd_page")
	b.Branch(isa.OpBGEU, isa.RegT3, isa.RegT1, "wd_round_end")
	b.I(isa.OpSLLI, isa.RegT4, isa.RegT3, isa.PageShift)
	b.R(isa.OpADD, isa.RegT4, isa.RegT4, isa.RegS9)
	b.Store(isa.OpSD, isa.RegA0, isa.RegT4, 0) // dirty the page
	// Think time.
	b.Mv(isa.RegT5, isa.RegT2)
	b.Label("wd_think")
	b.Branch(isa.OpBEQ, isa.RegT5, isa.RegZero, "wd_next_page")
	b.I(isa.OpADDI, isa.RegT5, isa.RegT5, -1)
	b.J("wd_think")
	b.Label("wd_next_page")
	b.I(isa.OpADDI, isa.RegT3, isa.RegT3, 1)
	b.J("wd_page")
	b.Label("wd_round_end")
	b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
	storeParam(b, gabi.PResult0, isa.RegA0)
	b.Branch(isa.OpBEQ, isa.RegT0, isa.RegZero, "wd_outer") // forever
	b.Branch(isa.OpBLTU, isa.RegA0, isa.RegT0, "wd_outer")
	b.J("done")
}

// emitIdle: arm a periodic timer (period PArg0 cycles) and WFI; the trap
// vector counts ticks into s2, accumulates wakeup latency into s3, and
// halts after PIterations ticks. Drives F11 latency measurements.
func emitIdle(b *asm.Builder) {
	b.Label("w_idle")
	b.Li(isa.RegS2, 0)                        // tick count
	b.Li(isa.RegS3, 0)                        // accumulated latency
	loadParam(b, isa.RegS4, gabi.PArg0)       // period
	loadParam(b, isa.RegS5, gabi.PIterations) // tick limit
	// Enable timer interrupts.
	b.Li(isa.RegT1, 1<<isa.IntTimer)
	b.Csrw(isa.CSRSie, isa.RegT1)
	b.Li(isa.RegT1, isa.StatusSIE)
	b.Csrw(isa.CSRSstatus, isa.RegT1)
	// Arm: deadline s7 = now + period.
	b.Csrr(isa.RegT1, isa.CSRTime)
	b.R(isa.OpADD, isa.RegS7, isa.RegT1, isa.RegS4)
	b.Csrw(isa.CSRStimecmp, isa.RegS7)
	b.Label("wi_loop")
	b.Wfi()
	b.J("wi_loop")
}

// emitTrapVector: the kernel trap handler. Dispatches on scause:
//
//	interrupt/timer  → tick bookkeeping (s2..s7), rearm, halt at limit
//	interrupt/ext    → claim from the interrupt controller, count in s6
//	ecall from U     → syscall: count in s0, halt at s1
//	anything else    → record cause and halt(0xEE)
func emitTrapVector(b *asm.Builder) {
	b.Align(4)
	b.Label("trap_vector")
	b.Csrr(isa.RegT5, isa.CSRScause)
	b.Branch(isa.OpBLT, isa.RegT5, isa.RegZero, "tv_interrupt")

	// Synchronous trap: syscall?
	b.Li(isa.RegT6, isa.CauseEcallU)
	b.Branch(isa.OpBNE, isa.RegT5, isa.RegT6, "tv_fatal")
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, 1)
	b.Csrr(isa.RegT6, isa.CSRSepc)
	b.I(isa.OpADDI, isa.RegT6, isa.RegT6, 4)
	b.Csrw(isa.CSRSepc, isa.RegT6)
	b.Branch(isa.OpBGEU, isa.RegS0, isa.RegS1, "tv_syscall_done")
	b.Sret()
	b.Label("tv_syscall_done")
	b.Mv(isa.RegA0, isa.RegS0)
	storeParam(b, gabi.PResult0, isa.RegA0)
	hcall1(b, gabi.HCMarker, 2)
	b.Halt(0)

	// Interrupt: isolate the cause number.
	b.Label("tv_interrupt")
	b.I(isa.OpSLLI, isa.RegT5, isa.RegT5, 1)
	b.I(isa.OpSRLI, isa.RegT5, isa.RegT5, 1)
	b.Li(isa.RegT6, isa.IntTimer)
	b.Branch(isa.OpBEQ, isa.RegT5, isa.RegT6, "tv_timer")
	b.Li(isa.RegT6, isa.IntExt)
	b.Branch(isa.OpBEQ, isa.RegT5, isa.RegT6, "tv_ext")
	b.Halt(0xEF) // unexpected interrupt

	b.Label("tv_timer")
	b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
	// latency += time - deadline
	b.Csrr(isa.RegT6, isa.CSRTime)
	b.R(isa.OpSUB, isa.RegT6, isa.RegT6, isa.RegS7)
	b.R(isa.OpADD, isa.RegS3, isa.RegS3, isa.RegT6)
	// Rearm: s7 += period (write also clears the pending bit).
	b.R(isa.OpADD, isa.RegS7, isa.RegS7, isa.RegS4)
	b.Csrw(isa.CSRStimecmp, isa.RegS7)
	b.Branch(isa.OpBGEU, isa.RegS2, isa.RegS5, "tv_timer_done")
	b.Sret()
	b.Label("tv_timer_done")
	b.Mv(isa.RegA0, isa.RegS2)
	storeParam(b, gabi.PResult0, isa.RegA0)
	storeParam(b, gabi.PResult1, isa.RegS3)
	hcall1(b, gabi.HCMarker, 2)
	b.Halt(0)

	b.Label("tv_ext")
	// Claim from the interrupt controller to deassert the line.
	b.Li(isa.RegT6, intCtlClaimAddr)
	b.Load(isa.OpLD, isa.RegT6, isa.RegT6, 0)
	b.I(isa.OpADDI, isa.RegS6, isa.RegS6, 1)
	b.Sret()

	b.Label("tv_fatal")
	storeParam(b, gabi.PResult3, isa.RegT5)
	b.Csrr(isa.RegT6, isa.CSRStval)
	storeParam(b, gabi.PResult2, isa.RegT6)
	b.Halt(0xEE)
}

// intCtlClaimAddr mirrors dev.IntCtlBase + dev.IntCtlClaim without importing
// the dev package (guest code must not depend on host packages beyond the
// ABI); checked against the real value in kernel_test.go.
const intCtlClaimAddr = 0x4000_1000
