//go:build !race

package guest

// raceScale divides host-time budgets of the stress tests under the race
// detector (see the sibling race_on_test.go); 1 in normal builds.
const raceScale = 1
