//go:build race

package guest

// raceScale under the race detector: stress budgets shrink ~4× so
// `go test -race ./...` stays CI-friendly without losing the concurrency
// coverage the stress exists for.
const raceScale = 4
