package guest

import (
	"fmt"
	"math/rand"
	"testing"

	"govisor/internal/asm"
	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/sched"
)

// Hot-trace torture: randomized cross-page guests whose loops run hot enough
// to promote chains into traces, then hit every invalidation rule mid-flight —
// SMC into a constituent page, periodic SFENCE.VMA between formation and
// entry, and branch divergence inside a formed trace. The differential matrix
// proves the trace layer (and its composition with every other fast path)
// architecturally invisible on these streams.

// traceArms: the trace layer alone, each layer it rides on, and everything
// off. NoBlockChain implies NoTraces (a trace is made of chain links), so the
// no-chain arm doubles as a composition check.
var traceArms = []struct {
	name  string
	tweak func(*core.Config)
}{
	{"no-traces", func(c *core.Config) { c.NoTraces = true }},
	{"no-chain", func(c *core.Config) { c.NoBlockChain = true }},
	{"no-superblocks", func(c *core.Config) { c.NoSuperblocks = true }},
	{"no-threaded", func(c *core.Config) { c.NoThreadedDispatch = true }},
	{"no-writememo", func(c *core.Config) { c.NoWriteMemo = true }},
	{"no-traces-no-threaded", func(c *core.Config) { c.NoTraces = true; c.NoThreadedDispatch = true }},
	{"interpreter", func(c *core.Config) {
		c.NoTraces = true
		c.NoBlockChain = true
		c.NoSuperblocks = true
		c.NoThreadedDispatch = true
		c.NoWriteMemo = true
	}},
}

// buildTraceTorture assembles one randomized hot-loop guest. Compared to the
// chain torture, the loop body is calmer (fewer, longer segments, an SFENCE
// only every 16th iteration and SMC once at the midpoint) and runs more
// iterations, so per-link heat crosses the promotion threshold between
// disturbances and the run spends real time inside formed traces — which the
// SMC store and the fences then tear down mid-flight.
func buildTraceTorture(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder(gabi.KernelBase)
	b.Mv(isa.RegS11, isa.RegA0)
	emitTrapStub(b)

	loadParam(b, isa.RegT0, gabi.PSatp)
	b.Csrw(isa.CSRSatp, isa.RegT0)
	b.SfenceVMA(isa.RegZero, isa.RegZero)

	loadParam(b, isa.RegS1, gabi.PHeapBase)
	b.I(isa.OpSLLI, isa.RegS1, isa.RegS1, isa.PageShift)

	iters := uint64(60 + rng.Intn(40))
	b.Li(isa.RegS0, iters)
	b.Li(isa.RegS2, 0) // ascending iteration index

	seg := func(i int) string { return fmt.Sprintf("seg%d", i) }
	nseg := 3 + rng.Intn(3)
	patchSeg := rng.Intn(nseg)

	b.Label("top")
	for i := 0; i < nseg; i++ {
		b.Label(seg(i))
		// Park segments just below a page boundary so trace hops cross it.
		if rng.Intn(2) == 0 {
			next := (b.PC() + isa.PageSize) &^ uint64(isa.PageSize-1)
			lead := uint64(2+rng.Intn(8)) * 4
			for b.PC()+lead < next {
				b.Nop()
			}
		}
		for k, blen := 0, 12+rng.Intn(28); k < blen; k++ {
			switch rng.Intn(8) {
			case 0:
				b.I(isa.OpADDI, isa.RegA0, isa.RegA0, int64(1+rng.Intn(7)))
			case 1:
				b.R(isa.OpXOR, isa.RegA1, isa.RegA1, isa.RegA0)
			case 2:
				b.R(isa.OpADD, isa.RegA2, isa.RegA2, isa.RegA1)
			case 3:
				b.I(isa.OpSLLI, isa.RegA3, isa.RegA2, int64(1+rng.Intn(3)))
			case 4:
				b.Load(isa.OpLD, isa.RegT1, isa.RegS1, int64(rng.Intn(64))*8)
			case 5:
				b.Store(isa.OpSD, isa.RegA2, isa.RegS1, int64(rng.Intn(64))*8)
			default:
				// Heavier ALU share than the chain torture: memless spans the
				// trace engine folds into batched replays.
				b.I(isa.OpADDI, isa.RegA4, isa.RegA4, 1)
			}
		}
		if i == patchSeg {
			b.Label("patch_slot")
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
		switch rng.Intn(4) {
		case 0: // fallthrough into the next segment
		case 1: // always taken while the loop is live
			b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, seg(i+1))
		case 2: // never taken: an armed link a formed trace must not follow
			b.Branch(isa.OpBEQ, isa.RegS0, isa.RegZero, seg(i+1))
		case 3:
			b.J(seg(i + 1))
		}
	}
	b.Label(seg(nseg))

	// SMC at the midpoint: rewrite the patch slot in place (+1 becomes +3),
	// bumping its page version — every trace with that page as a constituent
	// must demote on the exact instruction the block path would re-decode.
	b.Li(isa.RegT0, iters/2)
	b.Branch(isa.OpBNE, isa.RegS2, isa.RegT0, "no_smc")
	b.La(isa.RegT3, "patch_slot")
	b.Li(isa.RegT2, uint64(isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 3})))
	b.Store(isa.OpSW, isa.RegT2, isa.RegT3, 0)
	b.Label("no_smc")

	// Every 16th iteration: full TLB flush. Promotion needs 8 clean consume
	// hits, so traces form and run between fences and go stale across them.
	b.I(isa.OpANDI, isa.RegT0, isa.RegS2, 15)
	b.Branch(isa.OpBNE, isa.RegT0, isa.RegZero, "no_flush")
	b.SfenceVMA(isa.RegZero, isa.RegZero)
	b.Label("no_flush")

	b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
	b.Branch(isa.OpBEQ, isa.RegS0, isa.RegZero, "done")
	b.J("top")
	b.Label("done")
	b.Halt(0)
	emitTrapStubBody(b)
	img, err := b.Finish()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return img
}

// bootTraceTorture boots one torture image standalone and runs it to halt.
func bootTraceTorture(t *testing.T, mode core.Mode, img []byte, tweak func(*core.Config)) *core.VM {
	t.Helper()
	cfg := core.Config{Name: "trace-" + mode.String(), Mode: mode, MemBytes: testRAM}
	if tweak != nil {
		tweak(&cfg)
	}
	vm, err := core.NewVM(mem.NewPool(2*testRAM>>isa.PageShift), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Boot(img); err != nil {
		t.Fatal(err)
	}
	if st := vm.RunToHalt(runBudget); st != core.StateHalted {
		t.Fatalf("[%v] final state %v (err=%v, pc=%#x)", mode, st, vm.Err, vm.CPU.PC)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("[%v] guest panicked: halt=%#x", mode, vm.HaltCode)
	}
	return vm
}

// TestDifferentialTraceInvisible is the serial transparency proof for hot
// traces: on randomized hot-loop guests with SMC and flush churn, the full
// fast-path stack must be indistinguishable from every arm combination —
// cycles, instret, registers, CSRs, UART, result slots, guest RAM, and every
// VMM/MMU/TLB statistic.
func TestDifferentialTraceInvisible(t *testing.T) {
	for _, seed := range []int64{3, 17, 41} {
		img := buildTraceTorture(t, seed)
		for _, mode := range []core.Mode{core.ModeNative, core.ModeHW} {
			t.Run(fmt.Sprintf("%v/seed%d", mode, seed), func(t *testing.T) {
				base := bootTraceTorture(t, mode, img, nil)
				// The proof has teeth only if the baseline actually promoted
				// and ran traces.
				ic := base.CPU.ICache.Stats
				if ic.TraceFormations == 0 || ic.TraceEntries == 0 {
					t.Fatalf("baseline never ran a trace: %+v", ic)
				}
				for _, arm := range traceArms {
					ref := bootTraceTorture(t, mode, img, arm.tweak)
					compareVMs(t, arm.name, ref, base, true)
				}
			})
		}
	}
}

// TestDifferentialTraceParallel extends the proof to the parallel engine: a
// fleet of trace-torture guests (distinct seeds) run under RunParallel must
// be byte-identical with traces on or off at every worker count 1..4,
// including host clock and pool occupancy.
func TestDifferentialTraceParallel(t *testing.T) {
	imgs := [][]byte{
		buildTraceTorture(t, 111),
		buildTraceTorture(t, 222),
		buildTraceTorture(t, 333),
		buildTraceTorture(t, 444),
	}
	build := func(tweak func(*core.Config)) *core.Host {
		h := core.NewHost(16<<20>>isa.PageShift, 2, sched.NewCredit())
		for i, img := range imgs {
			cfg := core.Config{Name: fmt.Sprintf("trace%d", i), Mode: core.ModeHW, MemBytes: testRAM}
			if tweak != nil {
				tweak(&cfg)
			}
			vm, err := h.CreateVM(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Boot(img); err != nil {
				t.Fatal(err)
			}
			h.AddToScheduler(i, 256, 0)
		}
		return h
	}

	ref := build(func(c *core.Config) { c.NoTraces = true })
	runFleetParallel(t, ref, 1)

	for workers := 1; workers <= 4; workers++ {
		h := build(nil)
		runFleetParallel(t, h, workers)
		if h.Now != ref.Now {
			t.Errorf("w=%d: host clock %d != %d", workers, h.Now, ref.Now)
		}
		if h.Pool.InUse() != ref.Pool.InUse() {
			t.Errorf("w=%d: pool occupancy %d != %d", workers, h.Pool.InUse(), ref.Pool.InUse())
		}
		traced := false
		for i := range h.VMs {
			compareVMs(t, fmt.Sprintf("trace w=%d vm=%s", workers, h.VMs[i].Name),
				ref.VMs[i], h.VMs[i], true)
			if st := h.VMs[i].CPU.ICache.Stats; st.TraceFormations > 0 && st.TraceEntries > 0 {
				traced = true
			}
		}
		if !traced {
			t.Errorf("w=%d: no VM ever ran a trace", workers)
		}
	}
}
