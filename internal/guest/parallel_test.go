package guest

import (
	"crypto/sha256"
	"fmt"
	"testing"

	"govisor/internal/asm"
	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/ksm"
	"govisor/internal/sched"
	"govisor/internal/vnet"
)

// fleetVM is one member of a differential fleet.
type fleetVM struct {
	name   string
	mode   core.Mode
	w      Workload
	weight uint64
	capPct uint64
}

// fleetSpec describes a host worth of VMs. The two specs mirror the paper's
// consolidation and overcommit scenarios: mixed virtualization modes packed
// onto fewer PCPUs than VMs, and a fleet whose virtual RAM exceeds the host
// pool (every VM demand-fills against the shared, sharded pool).
type fleetSpec struct {
	name       string
	poolFrames uint64
	pcpus      int
	vms        []fleetVM
}

func consolidationFleet() fleetSpec {
	return fleetSpec{
		name:       "consolidation",
		poolFrames: 16 << 20 >> isa.PageShift,
		pcpus:      2,
		vms: []fleetVM{
			{"hog-hw", core.ModeHW, Dirty(3, 16, 100), 512, 0},
			{"compute-trap", core.ModeTrap, Compute(300, 40), 256, 0},
			{"touch-para", core.ModePara, MemTouch(2, 64, 30), 256, 0},
			{"sys-native", core.ModeNative, Syscall(40), 128, 50},
		},
	}
}

func overcommitFleet() fleetSpec {
	// 4 × 8 MiB of virtual RAM (8192 pages) over a 1500-frame pool: the
	// host is overcommitted, but bounded working sets keep demand fills
	// under budget, so execution stays exactly reproducible.
	return fleetSpec{
		name:       "overcommit",
		poolFrames: 1500,
		pcpus:      3,
		vms: []fleetVM{
			{"oc0", core.ModeHW, MemTouch(2, 220, 50), 256, 0},
			{"oc1", core.ModeHW, MemTouch(3, 150, 70), 256, 0},
			{"oc2", core.ModeHW, Dirty(4, 32, 60), 256, 0},
			{"oc3", core.ModeHW, Compute(400, 30), 256, 0},
		},
	}
}

func schedPolicies() []struct {
	name string
	mk   func() core.Scheduler
} {
	return []struct {
		name string
		mk   func() core.Scheduler
	}{
		{"rr", func() core.Scheduler { return sched.NewRoundRobin(core.DefaultQuantum) }},
		{"credit", func() core.Scheduler { return sched.NewCredit() }},
		{"cfs", func() core.Scheduler { return sched.NewCFS() }},
	}
}

// buildFleet boots a spec onto a fresh host.
func buildFleet(t *testing.T, spec fleetSpec, mk func() core.Scheduler) *core.Host {
	return buildFleetCfg(t, spec, mk, nil)
}

// buildFleetCfg is buildFleet with a per-VM config tweak hook (the
// superblock differential toggles block dispatch fleet-wide).
func buildFleetCfg(t *testing.T, spec fleetSpec, mk func() core.Scheduler, tweak func(*core.Config)) *core.Host {
	t.Helper()
	kernel, err := BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	h := core.NewHost(spec.poolFrames, spec.pcpus, mk())
	for i, fv := range spec.vms {
		cfg := core.Config{Name: fv.name, Mode: fv.mode, MemBytes: testRAM}
		if tweak != nil {
			tweak(&cfg)
		}
		vm, err := h.CreateVM(cfg)
		if err != nil {
			t.Fatal(err)
		}
		fv.w.Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, fv.weight, fv.capPct)
	}
	return h
}

// runFleetParallel drives a fleet to completion under the parallel engine.
func runFleetParallel(t *testing.T, h *core.Host, workers int) {
	t.Helper()
	h.RunParallel(workers, 8_000_000_000)
	if !h.AllHalted() {
		for _, vm := range h.VMs {
			t.Logf("%s: state %v err %v pc %#x", vm.Name, vm.State, vm.Err, vm.CPU.PC)
		}
		t.Fatalf("fleet did not run to halt with %d workers", workers)
	}
	for _, vm := range h.VMs {
		if vm.HaltCode != 0 {
			t.Fatalf("%s panicked: halt=%#x cause=%d", vm.Name, vm.HaltCode, vm.Result(gabi.PResult3))
		}
	}
}

// ramHash digests the full guest-physical image.
func ramHash(vm *core.VM) [32]byte {
	h := sha256.New()
	buf := make([]byte, isa.PageSize)
	for gfn := uint64(0); gfn < vm.Mem.Pages(); gfn++ {
		vm.Mem.ReadRaw(gfn, buf)
		h.Write(buf)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// compareVMs asserts b is indistinguishable from a. full also compares the
// interpreter exit counters and memory-population statistics — valid between
// host runs, but not against a standalone RunToHalt reference, whose quantum
// slicing legitimately differs (ExitQuantum is host bookkeeping, not guest
// state).
func compareVMs(t *testing.T, label string, a, b *core.VM, full bool) {
	t.Helper()
	ca, cb := a.CPU, b.CPU
	if ca.Cycles != cb.Cycles || ca.Instret != cb.Instret {
		t.Errorf("%s: time diverged: (cyc=%d ret=%d) vs (cyc=%d ret=%d)",
			label, ca.Cycles, ca.Instret, cb.Cycles, cb.Instret)
	}
	if ca.X != cb.X || ca.PC != cb.PC || ca.Priv != cb.Priv {
		t.Errorf("%s: register state diverged", label)
	}
	if ca.CSR != cb.CSR {
		t.Errorf("%s: CSR state diverged: %+v vs %+v", label, ca.CSR, cb.CSR)
	}
	if a.Stats != b.Stats {
		t.Errorf("%s: VMM stats diverged: %+v vs %+v", label, a.Stats, b.Stats)
	}
	if a.MMUCtx.Stats != b.MMUCtx.Stats {
		t.Errorf("%s: MMU stats diverged: %+v vs %+v", label, a.MMUCtx.Stats, b.MMUCtx.Stats)
	}
	if a.MMUCtx.TLB.Stats != b.MMUCtx.TLB.Stats {
		t.Errorf("%s: TLB stats diverged: %+v vs %+v", label, a.MMUCtx.TLB.Stats, b.MMUCtx.TLB.Stats)
	}
	if a.Output() != b.Output() {
		t.Errorf("%s: UART output diverged: %q vs %q", label, a.Output(), b.Output())
	}
	for slot := gabi.PResult0; slot <= gabi.PResult3; slot++ {
		if a.Result(slot) != b.Result(slot) {
			t.Errorf("%s: result slot %d diverged: %d vs %d", label, slot, a.Result(slot), b.Result(slot))
		}
	}
	if ramHash(a) != ramHash(b) {
		t.Errorf("%s: guest RAM image diverged", label)
	}
	if full {
		if ca.Stats != cb.Stats {
			t.Errorf("%s: exit stats diverged: %+v vs %+v", label, ca.Stats, cb.Stats)
		}
		if a.Mem.DirtySets != b.Mem.DirtySets || a.Mem.Present() != b.Mem.Present() {
			t.Errorf("%s: memory population diverged", label)
		}
	}
}

func shares(h *core.Host) []float64 {
	if s, ok := h.Sched.(interface{ Shares() []float64 }); ok {
		return s.Shares()
	}
	return nil
}

// TestDifferentialParallelInvisible is the equivalence proof for the
// parallel execution engine, mirroring PR 1's icache transparency test: for
// every scheduler policy and both the consolidation and overcommit fleets,
// RunParallel with 1..4 workers must be byte-identical — per-VM cycles,
// instret, registers, CSRs, UART output, guest RAM hashes, VMM/MMU/TLB
// statistics, host clock, pool occupancy and per-VM scheduler fairness
// stats — and each VM must additionally match a standalone serial RunToHalt
// of the same configuration in all guest-visible state (scheduling, like
// the icache, may only change host time).
func TestDifferentialParallelInvisible(t *testing.T) {
	for _, spec := range []fleetSpec{consolidationFleet(), overcommitFleet()} {
		for _, pol := range schedPolicies() {
			t.Run(spec.name+"/"+pol.name, func(t *testing.T) {
				ref := buildFleet(t, spec, pol.mk)
				runFleetParallel(t, ref, 1)
				refShares := shares(ref)

				for workers := 2; workers <= 4; workers++ {
					h := buildFleet(t, spec, pol.mk)
					runFleetParallel(t, h, workers)
					if h.Now != ref.Now {
						t.Errorf("w=%d: host clock %d != %d", workers, h.Now, ref.Now)
					}
					if h.Pool.InUse() != ref.Pool.InUse() {
						t.Errorf("w=%d: pool occupancy %d != %d", workers, h.Pool.InUse(), ref.Pool.InUse())
					}
					for i := range h.VMs {
						compareVMs(t, fmt.Sprintf("w=%d vm=%s", workers, h.VMs[i].Name),
							ref.VMs[i], h.VMs[i], true)
					}
					for i, s := range shares(h) {
						if s != refShares[i] {
							t.Errorf("w=%d: fairness shares diverged: %v vs %v", workers, shares(h), refShares)
							break
						}
					}
				}

				// Serial reference: the same guest, alone on a machine, run
				// to halt in one go. Scheduling must be architecturally
				// invisible for run-to-completion workloads.
				for i, fv := range spec.vms {
					solo := bootVM(t, fv.mode, fv.w)
					if st := solo.RunToHalt(runBudget); st != core.StateHalted || solo.HaltCode != 0 {
						t.Fatalf("solo %s: state %v halt %#x err %v", fv.name, st, solo.HaltCode, solo.Err)
					}
					compareVMs(t, fmt.Sprintf("serial vm=%s", fv.name), solo, ref.VMs[i], false)
				}
			})
		}
	}
}

// TestParallelFleetRaceStress is the short-deadline concurrency hammer: six
// VMs dirtying memory over one sharded pool with four workers, while a KSM
// scan at every epoch barrier merges identical pages — so the following
// epochs' concurrent guest writes COW-break shared frames and concurrent
// fetches revalidate (and re-predecode) icache pages whose versions the
// remaps bumped. Run under -race this exercises the pool shard locks, the
// atomic budget, atomic page versions and the lease/barrier happens-before
// edges; functionally it must end with every VM alive and unmerged pages
// intact.
func TestParallelFleetRaceStress(t *testing.T) {
	kernel, err := BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	const nvms = 6
	h := core.NewHost(nvms*(testRAM>>isa.PageShift)+256, 4, sched.NewCredit())
	for i := 0; i < nvms; i++ {
		vm, err := h.CreateVM(core.Config{Name: fmt.Sprintf("s%d", i), Mode: core.ModeHW, MemBytes: testRAM})
		if err != nil {
			t.Fatal(err)
		}
		Dirty(0, 24+uint64(i*8), 40).Apply(vm) // unbounded: runs for the whole budget
		if err := vm.Boot(kernel); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(i, 256, 0)
	}
	scanner := ksm.NewScanner(h.Pool)
	h.EpochFunc = func() {
		for _, vm := range h.VMs {
			scanner.ScanVM(vm.Mem)
		}
	}
	h.RunParallel(4, 6_000_000/raceScale)
	for _, vm := range h.VMs {
		if vm.State == core.StateError {
			t.Fatalf("%s died: %v", vm.Name, vm.Err)
		}
		if vm.Result(gabi.PResult0) == 0 {
			t.Fatalf("%s made no progress", vm.Name)
		}
	}
	if scanner.Stats.PagesMerged == 0 {
		t.Fatal("KSM barrier scan never merged a page — the stress lost its COW churn")
	}
}

// TestParallelAutoDefersSwitches: a fleet with inter-VM networking must not
// race or go nondeterministic under RunParallel — the engine flips attached
// switches into epoch-deferred delivery for the duration of the run (frames
// deliver at barriers in port order), restores the prior mode afterwards,
// and every traffic statistic is identical at every worker count.
func TestParallelAutoDefersSwitches(t *testing.T) {
	const frames = 12
	build := func() (*core.Host, *vnet.Switch) {
		sw := vnet.NewSwitch()
		h := core.NewHost(4*(testRAM>>isa.PageShift), 2, sched.NewCredit())
		prog, err := BuildRegNICProgram(frames, 64)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 2; i++ {
			vm, err := h.CreateVM(core.Config{Name: fmt.Sprintf("net%d", i), Mode: core.ModeHW, MemBytes: testRAM})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := vm.AttachRegNIC(sw.NewPort()); err != nil {
				t.Fatal(err)
			}
			if err := vm.Boot(prog); err != nil {
				t.Fatal(err)
			}
			h.AddToScheduler(i, 256, 0)
		}
		return h, sw
	}
	type netStats struct{ forwarded, flooded, dropped uint64 }
	var ref netStats
	for workers := 1; workers <= 4; workers++ {
		h, sw := build()
		h.RunParallel(workers, 4_000_000_000)
		if !h.AllHalted() {
			t.Fatalf("w=%d: net fleet did not halt", workers)
		}
		if sw.Deferred() {
			t.Fatalf("w=%d: switch left in deferred mode after run", workers)
		}
		got := netStats{sw.Forwarded, sw.Flooded, sw.Dropped}
		// The NIC guests transmit broadcast frames, so every frame floods to
		// the peer port and nothing is hairpin-filtered or unicast-forwarded.
		if got.forwarded+got.flooded+got.dropped != 2*frames {
			t.Fatalf("w=%d: %d frames entered the switch, want %d", workers,
				got.forwarded+got.flooded+got.dropped, 2*frames)
		}
		if got.flooded != 2*frames || got.dropped != 0 {
			t.Fatalf("w=%d: flooded=%d dropped=%d, want %d floods and no drops",
				workers, got.flooded, got.dropped, 2*frames)
		}
		if workers == 1 {
			ref = got
			continue
		}
		if got != ref {
			t.Fatalf("w=%d: switch stats diverged: %+v vs %+v", workers, got, ref)
		}
	}
}

// TestIRQWakeRedispatchesUnderBothEngines is the regression test for the
// device-wake starvation bug: a VM parked in WFI with no timer armed is
// woken by a NIC interrupt (frame delivery raises the external IRQ, which
// flips it to StateRunning without going through the timer wake path). Both
// host engines must resync the scheduler and redispatch it — before the
// fix, serial Run left the entity blocked forever and spun to the limit.
func TestIRQWakeRedispatchesUnderBothEngines(t *testing.T) {
	build := func() *core.Host {
		sw := vnet.NewSwitch()
		h := core.NewHost(4*(testRAM>>isa.PageShift), 2, sched.NewCredit())

		recv, err := h.CreateVM(core.Config{Name: "recv", Mode: core.ModeHW, MemBytes: testRAM})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := recv.AttachRegNIC(sw.NewPort()); err != nil {
			t.Fatal(err)
		}
		rb := asm.NewBuilder(gabi.KernelBase)
		rb.Wfi() // no timer armed: only the NIC IRQ can wake this guest
		rb.Halt(0)
		rimg, err := rb.Finish()
		if err != nil {
			t.Fatal(err)
		}
		if err := recv.Boot(rimg); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(0, 256, 0)

		send, err := h.CreateVM(core.Config{Name: "send", Mode: core.ModeHW, MemBytes: testRAM})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := send.AttachRegNIC(sw.NewPort()); err != nil {
			t.Fatal(err)
		}
		prog, err := BuildRegNICProgram(1, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := send.Boot(prog); err != nil {
			t.Fatal(err)
		}
		h.AddToScheduler(1, 256, 0)
		return h
	}

	run := map[string]func(h *core.Host){
		"serial":   func(h *core.Host) { h.Run(200_000_000) },
		"parallel": func(h *core.Host) { h.RunParallel(2, 200_000_000) },
	}
	for name, drive := range run {
		h := build()
		drive(h)
		if !h.AllHalted() {
			for _, vm := range h.VMs {
				t.Logf("[%s] %s: state %v err %v", name, vm.Name, vm.State, vm.Err)
			}
			t.Fatalf("[%s] IRQ-woken receiver was never redispatched", name)
		}
		// Tickless clock model: while parked in WFI the guest's clock tracks
		// wall time, so after the device wake the receiver must have absorbed
		// the wait for the sender's transmission (tens of MMIO exits, ≫5k
		// cycles) — not just its own handful of instructions.
		if recv := h.VMs[0]; recv.CPU.Cycles < 5_000 {
			t.Fatalf("[%s] IRQ wake did not sync the guest clock: %d cycles", name, recv.CPU.Cycles)
		}
	}
}
