package guest

import (
	"fmt"

	"govisor/internal/asm"
	"govisor/internal/gabi"
	"govisor/internal/isa"
)

// Stream programs are standalone guest images for the M3 superblock
// benchmark: loops whose bodies are long unrolled straight-line runs, the
// shape superblock dispatch is built for. Unlike the I/O programs they run
// with paging enabled (the VMM-prepared identity tables), so the fetch and
// data translation fast paths are exercised alongside block dispatch.

// StreamKind selects the unrolled body.
type StreamKind int

// Stream workload kinds.
const (
	// StreamALU is pure register arithmetic: an unrolled add/xor/shift mix.
	StreamALU StreamKind = iota
	// StreamCopy is a memory copy: unrolled load/store pairs walking a
	// source and a destination buffer within a page each iteration.
	StreamCopy
	// StreamStore is store-dense code: an unrolled run of stores walking
	// two destination pages, the M5 write-memo target shape (every retired
	// op pays the store-resolution cost).
	StreamStore
	// StreamMixed interleaves loads, ALU ops and stores in a fixed 1:1:2
	// pattern — the balance of a data-churning loop, exercising the read
	// and write fast paths together.
	StreamMixed
	// StreamXPageALU is the ALU mix with an unrolled body longer than a
	// code page, so every iteration's superblock must cross page
	// boundaries mid-run — the M6 cross-page continuation target shape.
	StreamXPageALU
	// StreamXPageLoop is a short ALU body deliberately positioned to
	// straddle a page boundary: each iteration enters on one page, crosses,
	// and branches back, so the baseline pays a full fetch translation and
	// icache lookup at the boundary and the back edge every time — the M6
	// block-chaining target shape.
	StreamXPageLoop
)

// String names the kind.
func (k StreamKind) String() string {
	switch k {
	case StreamCopy:
		return "copy-stream"
	case StreamStore:
		return "store-stream"
	case StreamMixed:
		return "mixed-stream"
	case StreamXPageALU:
		return "xpage-alu-stream"
	case StreamXPageLoop:
		return "xpage-loop-stream"
	}
	return "alu-stream"
}

// BuildStreamProgram assembles a stream guest: `iters` iterations over an
// unrolled body of `unroll` straight-line instructions (ALU ops, or
// load/store pairs for StreamCopy), then HALT(0). The body plus the 2-op
// loop tail fits one code page for unroll ≤ 1000, so each iteration is one
// superblock entry plus a terminator.
func BuildStreamProgram(kind StreamKind, iters, unroll uint64) ([]byte, error) {
	// The cross-page ALU kind exists to exceed a page, so its body may be
	// up to 4000 instructions (16 KB, still well inside branch reach); the
	// boundary-straddling loop must not span more than two pages.
	maxUnroll := uint64(1000)
	if kind == StreamXPageALU {
		maxUnroll = 4000
	}
	if unroll == 0 || unroll > maxUnroll {
		return nil, fmt.Errorf("guest: stream unroll %d out of range (1..%d)", unroll, maxUnroll)
	}
	b := asm.NewBuilder(gabi.KernelBase)
	b.Mv(isa.RegS11, isa.RegA0) // param base
	emitTrapStub(b)             // stray traps halt 0xEE

	// Enable paging with the VMM-prepared identity tables.
	loadParam(b, isa.RegT0, gabi.PSatp)
	b.Csrw(isa.CSRSatp, isa.RegT0)
	b.SfenceVMA(isa.RegZero, isa.RegZero)

	// Buffers for the copy kernel: source at the heap base, destination one
	// page up (immediate offsets walk within the pages).
	loadParam(b, isa.RegS1, gabi.PHeapBase)
	b.I(isa.OpSLLI, isa.RegS1, isa.RegS1, isa.PageShift)
	b.I(isa.OpADDI, isa.RegS2, isa.RegS1, isa.PageSize)

	b.Li(isa.RegS0, iters)
	if kind == StreamXPageLoop {
		// Park the loop entry half a body below the next page boundary so
		// every iteration straddles it: enter on one page, cross mid-block,
		// branch back from the next.
		next := (b.PC() + isa.PageSize) &^ uint64(isa.PageSize-1)
		for b.PC()+unroll/2*4 < next {
			b.Nop()
		}
	}
	b.Label("stream_loop")
	switch kind {
	case StreamCopy:
		// unroll/2 load/store pairs; offsets stay inside one page.
		for i := uint64(0); i+1 < unroll; i += 2 {
			off := int64((i / 2) * 8 % isa.PageSize)
			b.Load(isa.OpLD, isa.RegT1, isa.RegS1, off)
			b.Store(isa.OpSD, isa.RegT1, isa.RegS2, off)
		}
		if unroll%2 != 0 {
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
	case StreamStore:
		// Pure stores alternating between two destination pages; offsets
		// walk within each page so every byte lands somewhere distinct.
		for i := uint64(0); i < unroll; i++ {
			off := int64((i / 2) * 8 % isa.PageSize)
			base := uint8(isa.RegS1)
			if i%2 != 0 {
				base = isa.RegS2
			}
			b.Store(isa.OpSD, isa.RegA0, base, off)
		}
	case StreamMixed:
		// 1 load : 1 ALU : 2 stores per 4-op group.
		for i := uint64(0); i < unroll; i++ {
			off := int64((i / 4) * 8 % isa.PageSize)
			switch i % 4 {
			case 0:
				b.Load(isa.OpLD, isa.RegT1, isa.RegS1, off)
			case 1:
				b.I(isa.OpADDI, isa.RegT1, isa.RegT1, 3)
			case 2:
				b.Store(isa.OpSD, isa.RegT1, isa.RegS2, off)
			default:
				b.Store(isa.OpSD, isa.RegT1, isa.RegS1, off)
			}
		}
	default:
		// StreamALU, and the two cross-page kinds, share the ALU mix: the
		// cross-page variants differ only in body length (StreamXPageALU
		// exceeds a page) or placement (StreamXPageLoop straddles a
		// boundary, positioned above).
		for i := uint64(0); i < unroll; i++ {
			switch i % 4 {
			case 0:
				b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 3)
			case 1:
				b.R(isa.OpXOR, isa.RegA1, isa.RegA1, isa.RegA0)
			case 2:
				b.R(isa.OpADD, isa.RegA2, isa.RegA2, isa.RegA1)
			default:
				b.I(isa.OpSLLI, isa.RegA3, isa.RegA2, 1)
			}
		}
	}
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
	b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, "stream_loop")
	b.Halt(0)
	emitTrapStubBody(b)
	return b.Finish()
}
