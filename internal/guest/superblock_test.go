package guest

import (
	"fmt"
	"testing"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/sched"
)

// TestDifferentialSuperblockInvisible is the transparency proof for the
// superblock execution engine, the successor to PR 1's icache proof: for
// every virtualization mode and differential workload, a run with superblock
// dispatch must be indistinguishable from a run pinned to the
// per-instruction path — cycles, instret, registers, CSRs, UART output,
// guest RAM, and every VMM/MMU/TLB statistic. Event boundaries (quantum
// expiry, STIMECMP latches, interrupt windows) must land on exactly the same
// instruction, which the idle/syscall/csr workloads exercise through timer
// wakeups and privilege flips. Both serial execution (RunToHalt over
// CPU.Run) and the parallel engine (RunParallel at workers 1..4, below) are
// covered; blocks may only change host time.
func TestDifferentialSuperblockInvisible(t *testing.T) {
	workloads := []struct {
		name string
		w    Workload
	}{
		{"compute-hot", Compute(300, 50)},  // straight-line ALU runs, CSR terminators
		{"memtouch", MemTouch(4, 300, 40)}, // data TLB churn under block memory ops
		{"ptchurn", PTChurn(2, false)},     // SFENCE flushes invalidate fetch/data memos
		{"syscall", Syscall(60)},           // privilege flips end blocks exactly
		{"csr", CSRLoop(80)},               // CSR exits every few instructions
		{"idle", Idle(3, 50_000)},          // STIMECMP latches near block horizons
	}
	for _, mode := range allModes {
		for _, wl := range workloads {
			t.Run(mode.String()+"/"+wl.name, func(t *testing.T) {
				on := bootAndRunSB(t, mode, wl.w, false)
				off := bootAndRunSB(t, mode, wl.w, true)

				con, coff := on.CPU, off.CPU
				if con.Cycles != coff.Cycles || con.Instret != coff.Instret {
					t.Errorf("time diverged: blocks (cyc=%d ret=%d) vs plain (cyc=%d ret=%d)",
						con.Cycles, con.Instret, coff.Cycles, coff.Instret)
				}
				if con.X != coff.X || con.PC != coff.PC || con.Priv != coff.Priv {
					t.Error("register state diverged")
				}
				if con.CSR != coff.CSR {
					t.Errorf("CSR state diverged: %+v vs %+v", con.CSR, coff.CSR)
				}
				if con.Stats != coff.Stats {
					t.Errorf("exit stats diverged: %+v vs %+v", con.Stats, coff.Stats)
				}
				if on.Stats != off.Stats {
					t.Errorf("VMM stats diverged: %+v vs %+v", on.Stats, off.Stats)
				}
				if on.MMUCtx.Stats != off.MMUCtx.Stats {
					t.Errorf("MMU stats diverged: %+v vs %+v", on.MMUCtx.Stats, off.MMUCtx.Stats)
				}
				if on.MMUCtx.TLB.Stats != off.MMUCtx.TLB.Stats {
					t.Errorf("TLB stats diverged: %+v vs %+v", on.MMUCtx.TLB.Stats, off.MMUCtx.TLB.Stats)
				}
				if on.Output() != off.Output() {
					t.Errorf("UART output diverged: %q vs %q", on.Output(), off.Output())
				}
				if on.Mem.DirtySets != off.Mem.DirtySets || on.Mem.Present() != off.Mem.Present() {
					t.Error("memory population diverged")
				}
				for slot := gabi.PResult0; slot <= gabi.PResult3; slot++ {
					if on.Result(slot) != off.Result(slot) {
						t.Errorf("result slot %d diverged: %d vs %d", slot, on.Result(slot), off.Result(slot))
					}
				}
				if ramHash(on) != ramHash(off) {
					t.Error("guest RAM image diverged")
				}
			})
		}
	}
}

// bootAndRunSB runs a workload with superblock dispatch toggled (the icache
// stays on in both arms so the comparison isolates block dispatch).
func bootAndRunSB(t *testing.T, mode core.Mode, w Workload, noBlocks bool) *core.VM {
	t.Helper()
	vm := bootVMCfg(t, mode, w, func(c *core.Config) { c.NoSuperblocks = noBlocks })
	state := vm.RunToHalt(runBudget)
	if state != core.StateHalted {
		t.Fatalf("[%v blocks=%v] final state %v (err=%v, pc=%#x)", mode, !noBlocks, state, vm.Err, vm.CPU.PC)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("[%v blocks=%v] guest panicked: halt=%#x", mode, !noBlocks, vm.HaltCode)
	}
	return vm
}

// TestDifferentialSuperblockParallel extends the superblock proof to the
// parallel engine: a mixed-mode fleet run under RunParallel must be byte-
// identical with blocks on or off at every worker count 1..4 — per-VM
// cycles, instret, registers, CSRs, UART, RAM hashes, VMM/MMU/TLB stats,
// exit counters, host clock and pool occupancy. Quantum slicing is the
// sensitive part: blocks must fall back at exactly the same epoch-lease
// deadlines the per-instruction path observes.
func TestDifferentialSuperblockParallel(t *testing.T) {
	spec := consolidationFleet()
	ref := buildFleetCfg(t, spec, func() core.Scheduler { return sched.NewCredit() },
		func(c *core.Config) { c.NoSuperblocks = true })
	runFleetParallel(t, ref, 1)

	for workers := 1; workers <= 4; workers++ {
		h := buildFleetCfg(t, spec, func() core.Scheduler { return sched.NewCredit() }, nil)
		runFleetParallel(t, h, workers)
		if h.Now != ref.Now {
			t.Errorf("w=%d: host clock %d != %d", workers, h.Now, ref.Now)
		}
		if h.Pool.InUse() != ref.Pool.InUse() {
			t.Errorf("w=%d: pool occupancy %d != %d", workers, h.Pool.InUse(), ref.Pool.InUse())
		}
		for i := range h.VMs {
			compareVMs(t, fmt.Sprintf("blocks w=%d vm=%s", workers, h.VMs[i].Name),
				ref.VMs[i], h.VMs[i], true)
		}
	}

	// The blocked runs must actually have used superblock dispatch — a
	// straight-line-free fleet would vacuously pass. ICache hit counts are
	// host-side, so differing between arms is fine; zero block activity is
	// not. (Block dispatch replaces per-instruction lookups, so the blocked
	// arm must do strictly fewer lookups than instructions retired.)
	h := buildFleetCfg(t, spec, func() core.Scheduler { return sched.NewCredit() }, nil)
	runFleetParallel(t, h, 1)
	for _, vm := range h.VMs {
		ic := vm.CPU.ICache
		if ic == nil {
			t.Fatalf("%s: no icache attached", vm.Name)
		}
		lookups := ic.Stats.Hits + ic.Stats.Misses + ic.Stats.Invalidations
		if lookups >= vm.CPU.Instret {
			t.Errorf("%s: %d icache lookups for %d retired instructions — superblocks never dispatched",
				vm.Name, lookups, vm.CPU.Instret)
		}
	}
}
