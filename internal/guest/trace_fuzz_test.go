package guest

import (
	"fmt"
	"testing"

	"govisor/internal/asm"
	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/mem"
)

// fuzzCursor doles out fuzz bytes, falling back to a fixed rotation when the
// input runs dry so every prefix still decodes to a complete, valid guest.
type fuzzCursor struct {
	data []byte
	pos  int
}

func (c *fuzzCursor) next() byte {
	if c.pos >= len(c.data) {
		c.pos++
		return byte(c.pos * 37)
	}
	b := c.data[c.pos]
	c.pos++
	return b
}

// buildTraceFuzzImg decodes fuzz bytes into a bounded hot-loop guest: the
// iteration count, segment layout, per-segment instruction mix, terminator
// kinds, SMC patch placement and SFENCE cadence all come from the input, so
// the fuzzer explores chain/SMC/SFENCE interleavings the fixed seeds of the
// differential suite never pin down. Every decode yields a valid image — the
// instruction vocabulary is closed and labels always resolve.
func buildTraceFuzzImg(data []byte) ([]byte, error) {
	c := &fuzzCursor{data: data}
	b := asm.NewBuilder(gabi.KernelBase)
	b.Mv(isa.RegS11, isa.RegA0)
	emitTrapStub(b)

	loadParam(b, isa.RegT0, gabi.PSatp)
	b.Csrw(isa.CSRSatp, isa.RegT0)
	b.SfenceVMA(isa.RegZero, isa.RegZero)
	loadParam(b, isa.RegS1, gabi.PHeapBase)
	b.I(isa.OpSLLI, isa.RegS1, isa.RegS1, isa.PageShift)

	iters := uint64(24 + int(c.next())%72)
	nseg := 2 + int(c.next())%4
	patchSeg := int(c.next()) % nseg
	patchOn := c.next()%2 == 0
	fenceMask := []int64{0, 7, 15, 31}[c.next()%4] // 0: no fences
	smcAt := iters / 2

	b.Li(isa.RegS0, iters)
	b.Li(isa.RegS2, 0)

	seg := func(i int) string { return fmt.Sprintf("seg%d", i) }
	b.Label("top")
	for i := 0; i < nseg; i++ {
		b.Label(seg(i))
		if c.next()%2 == 0 {
			next := (b.PC() + isa.PageSize) &^ uint64(isa.PageSize-1)
			lead := uint64(2+int(c.next())%8) * 4
			for b.PC()+lead < next {
				b.Nop()
			}
		}
		for k, blen := 0, 8+int(c.next())%24; k < blen; k++ {
			switch c.next() % 8 {
			case 0:
				b.I(isa.OpADDI, isa.RegA0, isa.RegA0, int64(1+int(c.next())%7))
			case 1:
				b.R(isa.OpXOR, isa.RegA1, isa.RegA1, isa.RegA0)
			case 2:
				b.R(isa.OpADD, isa.RegA2, isa.RegA2, isa.RegA1)
			case 3:
				b.I(isa.OpSLLI, isa.RegA3, isa.RegA2, int64(1+int(c.next())%3))
			case 4:
				b.Load(isa.OpLD, isa.RegT1, isa.RegS1, int64(int(c.next())%64)*8)
			case 5:
				b.Store(isa.OpSD, isa.RegA2, isa.RegS1, int64(int(c.next())%64)*8)
			default:
				b.I(isa.OpADDI, isa.RegA4, isa.RegA4, 1)
			}
		}
		if i == patchSeg && patchOn {
			b.Label("patch_slot")
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
		switch c.next() % 4 {
		case 0: // fallthrough
		case 1:
			b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, seg(i+1))
		case 2:
			b.Branch(isa.OpBEQ, isa.RegS0, isa.RegZero, seg(i+1))
		case 3:
			b.J(seg(i + 1))
		}
	}
	b.Label(seg(nseg))

	if patchOn {
		b.Li(isa.RegT0, smcAt)
		b.Branch(isa.OpBNE, isa.RegS2, isa.RegT0, "no_smc")
		b.La(isa.RegT3, "patch_slot")
		b.Li(isa.RegT2, uint64(isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 3})))
		b.Store(isa.OpSW, isa.RegT2, isa.RegT3, 0)
		b.Label("no_smc")
	}
	if fenceMask != 0 {
		b.I(isa.OpANDI, isa.RegT0, isa.RegS2, fenceMask)
		b.Branch(isa.OpBNE, isa.RegT0, isa.RegZero, "no_flush")
		b.SfenceVMA(isa.RegZero, isa.RegZero)
		b.Label("no_flush")
	}

	b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
	b.Branch(isa.OpBEQ, isa.RegS0, isa.RegZero, "done")
	b.J("top")
	b.Label("done")
	b.Halt(0)
	emitTrapStubBody(b)
	return b.Finish()
}

// FuzzTraceFormation drives fuzz-decoded hot-loop guests through the full
// fast-path stack and a NoTraces oracle, asserting byte-identical final state
// — the trace engine's transparency proof extended to adversarial
// chain/SMC/SFENCE interleavings.
func FuzzTraceFormation(f *testing.F) {
	// Seeds: a calm hot loop (pure formation), SMC mid-run, dense fences,
	// fences plus SMC, and a branchy multi-segment layout.
	f.Add([]byte{96, 0, 0, 1, 0, 0, 4, 8, 0, 1, 2, 3, 4, 5, 6, 7, 0})
	f.Add([]byte{72, 1, 0, 0, 0, 1, 6, 12, 5, 4, 3, 2, 1, 0, 3})
	f.Add([]byte{60, 0, 0, 1, 1, 0, 2, 16, 7, 7, 7, 7, 1})
	f.Add([]byte{88, 1, 1, 0, 2, 0, 0, 20, 6, 5, 4, 3, 2, 1, 0, 2})
	f.Add([]byte{48, 3, 2, 0, 3, 1, 2, 9, 1, 3, 1, 0, 1, 2, 0, 9, 2, 3, 1, 7, 3, 0, 1, 9, 3})

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 512 {
			t.Skip("bounded: layout decoding never consumes more")
		}
		img, err := buildTraceFuzzImg(data)
		if err != nil {
			t.Fatalf("decoded image failed to assemble: %v", err)
		}
		boot := func(noTraces bool) *core.VM {
			cfg := core.Config{Name: "trace-fuzz", Mode: core.ModeHW, MemBytes: testRAM, NoTraces: noTraces}
			vm, err := core.NewVM(mem.NewPool(2*testRAM>>isa.PageShift), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Boot(img); err != nil {
				t.Fatal(err)
			}
			if st := vm.RunToHalt(runBudget); st != core.StateHalted {
				t.Fatalf("noTraces=%v: final state %v (err=%v, pc=%#x)", noTraces, st, vm.Err, vm.CPU.PC)
			}
			if vm.HaltCode != 0 {
				t.Fatalf("noTraces=%v: guest panicked: halt=%#x", noTraces, vm.HaltCode)
			}
			return vm
		}
		base := boot(false)
		oracle := boot(true)
		compareVMs(t, "trace-fuzz-oracle", oracle, base, true)
	})
}
