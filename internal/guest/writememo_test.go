package guest

import (
	"fmt"
	"testing"

	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/sched"
)

// TestDifferentialWriteMemoInvisible is the transparency proof for the
// write-path memoization engine, the successor to the icache (PR 1),
// superblock (PR 3) and dispatch (PR 4) proofs: for every virtualization
// mode and differential workload, a run on the write memo stack
// (mmu.TranslateWrite + mem.WriteUintFast with coalesced version bumps) must
// be indistinguishable from a run pinned to the unmemoized store path —
// cycles, instret, registers, CSRs, UART output, guest RAM, dirty
// accounting, and every VMM/MMU/TLB statistic. The icache, superblocks and
// threaded dispatch stay on in both arms, so the comparison isolates the
// write memo; it may only change host time.
func TestDifferentialWriteMemoInvisible(t *testing.T) {
	workloads := []struct {
		name     string
		w        Workload
		wantHits bool // the workload reliably revisits store pages, so a
		// memo that never hits would make the proof vacuous
	}{
		{"compute-hot", Compute(300, 50), false},  // stack stores between ALU runs
		{"memtouch", MemTouch(4, 300, 40), false}, // strided working set: slot-collision stress
		{"store-hot", MemTouch(6, 4, 100), true},  // page-local write loop: the memo's target shape
		{"ptchurn", PTChurn(2, false), false},     // stores into tracked PT pages (wprot faults)
		{"syscall", Syscall(60), false},           // trap frames stored across privilege flips
		{"csr", CSRLoop(80), false},               // memo survival across CSR exits
		{"idle", Idle(3, 50_000), false},          // timer wakeups between store bursts
	}
	for _, mode := range allModes {
		for _, wl := range workloads {
			t.Run(mode.String()+"/"+wl.name, func(t *testing.T) {
				on := bootAndRunWM(t, mode, wl.w, false)
				off := bootAndRunWM(t, mode, wl.w, true)

				con, coff := on.CPU, off.CPU
				if con.Cycles != coff.Cycles || con.Instret != coff.Instret {
					t.Errorf("time diverged: memo (cyc=%d ret=%d) vs plain (cyc=%d ret=%d)",
						con.Cycles, con.Instret, coff.Cycles, coff.Instret)
				}
				if con.X != coff.X || con.PC != coff.PC || con.Priv != coff.Priv {
					t.Error("register state diverged")
				}
				if con.CSR != coff.CSR {
					t.Errorf("CSR state diverged: %+v vs %+v", con.CSR, coff.CSR)
				}
				if con.Stats != coff.Stats {
					t.Errorf("exit stats diverged: %+v vs %+v", con.Stats, coff.Stats)
				}
				if on.Stats != off.Stats {
					t.Errorf("VMM stats diverged: %+v vs %+v", on.Stats, off.Stats)
				}
				if on.MMUCtx.Stats != off.MMUCtx.Stats {
					t.Errorf("MMU stats diverged: %+v vs %+v", on.MMUCtx.Stats, off.MMUCtx.Stats)
				}
				if on.MMUCtx.TLB.Stats != off.MMUCtx.TLB.Stats {
					t.Errorf("TLB stats diverged: %+v vs %+v", on.MMUCtx.TLB.Stats, off.MMUCtx.TLB.Stats)
				}
				if on.Output() != off.Output() {
					t.Errorf("UART output diverged: %q vs %q", on.Output(), off.Output())
				}
				if on.Mem.DirtySets != off.Mem.DirtySets || on.Mem.COWBreaks != off.Mem.COWBreaks ||
					on.Mem.DemandFills != off.Mem.DemandFills || on.Mem.Present() != off.Mem.Present() {
					t.Error("memory population/dirty accounting diverged")
				}
				for slot := gabi.PResult0; slot <= gabi.PResult3; slot++ {
					if on.Result(slot) != off.Result(slot) {
						t.Errorf("result slot %d diverged: %d vs %d", slot, on.Result(slot), off.Result(slot))
					}
				}
				if ramHash(on) != ramHash(off) {
					t.Error("guest RAM image diverged")
				}
				// Vacuity guards: the memo arm must actually have exercised
				// the memo (fills always; hits on page-local store loops),
				// and the reference arm must never have touched it.
				if on.Mem.WMemoFills == 0 {
					t.Error("memo run never filled the write memo")
				}
				if wl.wantHits && on.Mem.WMemoHits == 0 {
					t.Error("memo run never hit the write memo")
				}
				if off.Mem.WMemoHits != 0 || off.Mem.WMemoFills != 0 {
					t.Errorf("NoWriteMemo run touched the memo (hits=%d fills=%d)",
						off.Mem.WMemoHits, off.Mem.WMemoFills)
				}
			})
		}
	}
}

// bootAndRunWM runs a workload with the write memo toggled (every other
// engine stays on in both arms so the comparison isolates the memo).
func bootAndRunWM(t *testing.T, mode core.Mode, w Workload, noMemo bool) *core.VM {
	t.Helper()
	vm := bootVMCfg(t, mode, w, func(c *core.Config) { c.NoWriteMemo = noMemo })
	state := vm.RunToHalt(runBudget)
	if state != core.StateHalted {
		t.Fatalf("[%v memo=%v] final state %v (err=%v, pc=%#x)", mode, !noMemo, state, vm.Err, vm.CPU.PC)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("[%v memo=%v] guest panicked: halt=%#x", mode, !noMemo, vm.HaltCode)
	}
	return vm
}

// TestDifferentialWriteMemoParallel extends the write-memo proof to the
// parallel engine: a mixed-mode fleet under RunParallel must be byte-
// identical with the memo on or off at every worker count 1..4 — per-VM
// cycles, instret, registers, CSRs, UART, RAM hashes, VMM/MMU/TLB stats,
// exit counters, host clock and pool occupancy. The consolidation fleet's
// KSM-free COW (clone/dedup) churn and demand fills run against warm memos
// in every epoch.
func TestDifferentialWriteMemoParallel(t *testing.T) {
	spec := consolidationFleet()
	ref := buildFleetCfg(t, spec, func() core.Scheduler { return sched.NewCredit() },
		func(c *core.Config) { c.NoWriteMemo = true })
	runFleetParallel(t, ref, 1)

	for workers := 1; workers <= 4; workers++ {
		h := buildFleetCfg(t, spec, func() core.Scheduler { return sched.NewCredit() }, nil)
		runFleetParallel(t, h, workers)
		if h.Now != ref.Now {
			t.Errorf("w=%d: host clock %d != %d", workers, h.Now, ref.Now)
		}
		if h.Pool.InUse() != ref.Pool.InUse() {
			t.Errorf("w=%d: pool occupancy %d != %d", workers, h.Pool.InUse(), ref.Pool.InUse())
		}
		for i := range h.VMs {
			compareVMs(t, fmt.Sprintf("writememo w=%d vm=%s", workers, h.VMs[i].Name),
				ref.VMs[i], h.VMs[i], true)
		}
	}
}
