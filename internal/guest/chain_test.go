package guest

import (
	"fmt"
	"math/rand"
	"testing"

	"govisor/internal/asm"
	"govisor/internal/core"
	"govisor/internal/gabi"
	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/sched"
)

// Cross-page control-flow torture: randomized standalone guests whose blocks
// straddle page boundaries, whose terminators (taken and not-taken branches,
// jumps, fallthroughs) land on both sides of boundaries, and whose bodies
// store into a successor code page (SMC) and flush the TLB between chained
// blocks — every invalidation rule of the chain cache on one instruction
// stream. The differential matrix below proves the chaining layer (and its
// composition with every other fast path) architecturally invisible on it.

// chainArms are the fast-path toggles the matrix composes: each alone, the
// pairs that interact (chaining rides on superblocks and the block bodies
// route through threaded dispatch and the write memo), and everything off.
var chainArms = []struct {
	name  string
	tweak func(*core.Config)
}{
	{"no-chain", func(c *core.Config) { c.NoBlockChain = true }},
	{"no-superblocks", func(c *core.Config) { c.NoSuperblocks = true }},
	{"no-threaded", func(c *core.Config) { c.NoThreadedDispatch = true }},
	{"no-writememo", func(c *core.Config) { c.NoWriteMemo = true }},
	{"no-chain-no-threaded", func(c *core.Config) { c.NoBlockChain = true; c.NoThreadedDispatch = true }},
	{"no-superblocks-no-writememo", func(c *core.Config) { c.NoSuperblocks = true; c.NoWriteMemo = true }},
	{"interpreter", func(c *core.Config) {
		c.NoBlockChain = true
		c.NoSuperblocks = true
		c.NoThreadedDispatch = true
		c.NoWriteMemo = true
	}},
}

// buildChainTorture assembles one randomized cross-page guest. The layout is
// seed-deterministic: a loop over segments whose bodies are padded to
// straddle page boundaries, terminated by a random mix of fallthroughs,
// always-taken branches, never-taken branches (the armed-but-fallthrough
// chain case) and jumps; one segment holds a patchable slot a later
// iteration overwrites in place (SMC into a chained page), and every few
// iterations the loop tail runs SFENCE.VMA so live chain links go stale
// under the TLB-generation check.
func buildChainTorture(t *testing.T, seed int64) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	b := asm.NewBuilder(gabi.KernelBase)
	b.Mv(isa.RegS11, isa.RegA0)
	emitTrapStub(b)

	loadParam(b, isa.RegT0, gabi.PSatp)
	b.Csrw(isa.CSRSatp, isa.RegT0)
	b.SfenceVMA(isa.RegZero, isa.RegZero)

	// Data page for the load/store mix (identity-mapped heap).
	loadParam(b, isa.RegS1, gabi.PHeapBase)
	b.I(isa.OpSLLI, isa.RegS1, isa.RegS1, isa.PageShift)

	iters := uint64(40 + rng.Intn(24))
	b.Li(isa.RegS0, iters)
	b.Li(isa.RegS2, 0) // ascending iteration index

	seg := func(i int) string { return fmt.Sprintf("seg%d", i) }
	nseg := 6 + rng.Intn(4)
	patchSeg := rng.Intn(nseg)

	b.Label("top")
	for i := 0; i < nseg; i++ {
		b.Label(seg(i))
		// Park roughly half the segments just below a page boundary so the
		// body enters on one page and retires across it.
		if rng.Intn(2) == 0 {
			next := (b.PC() + isa.PageSize) &^ uint64(isa.PageSize-1)
			lead := uint64(2+rng.Intn(8)) * 4
			for b.PC()+lead < next {
				b.Nop()
			}
		}
		for k, blen := 0, 8+rng.Intn(24); k < blen; k++ {
			switch rng.Intn(6) {
			case 0:
				b.I(isa.OpADDI, isa.RegA0, isa.RegA0, int64(1+rng.Intn(7)))
			case 1:
				b.R(isa.OpXOR, isa.RegA1, isa.RegA1, isa.RegA0)
			case 2:
				b.R(isa.OpADD, isa.RegA2, isa.RegA2, isa.RegA1)
			case 3:
				b.I(isa.OpSLLI, isa.RegA3, isa.RegA2, int64(1+rng.Intn(3)))
			case 4:
				b.Load(isa.OpLD, isa.RegT1, isa.RegS1, int64(rng.Intn(64))*8)
			case 5:
				b.Store(isa.OpSD, isa.RegA2, isa.RegS1, int64(rng.Intn(64))*8)
			}
		}
		if i == patchSeg {
			b.Label("patch_slot")
			b.I(isa.OpADDI, isa.RegA0, isa.RegA0, 1)
		}
		switch rng.Intn(4) {
		case 0: // fallthrough into the next segment
		case 1: // always taken: s0 is nonzero until the loop tail retires it
			b.Branch(isa.OpBNE, isa.RegS0, isa.RegZero, seg(i+1))
		case 2: // never taken: arms a chain source, then falls through
			b.Branch(isa.OpBEQ, isa.RegS0, isa.RegZero, seg(i+1))
		case 3:
			b.J(seg(i + 1))
		}
	}
	b.Label(seg(nseg))

	// SMC: halfway through the run, rewrite the patch slot in place
	// (+1 becomes +3), invalidating its page's decoded image and every
	// chain link into it.
	b.Li(isa.RegT0, iters/2)
	b.Branch(isa.OpBNE, isa.RegS2, isa.RegT0, "no_smc")
	b.La(isa.RegT3, "patch_slot")
	b.Li(isa.RegT2, uint64(isa.Encode(isa.Inst{Op: isa.OpADDI, Rd: isa.RegA0, Rs1: isa.RegA0, Imm: 3})))
	b.Store(isa.OpSW, isa.RegT2, isa.RegT3, 0)
	b.Label("no_smc")

	// Every 8th iteration: full TLB flush between chained blocks, so links
	// recorded before it fail the generation check and re-resolve.
	b.I(isa.OpANDI, isa.RegT0, isa.RegS2, 7)
	b.Branch(isa.OpBNE, isa.RegT0, isa.RegZero, "no_flush")
	b.SfenceVMA(isa.RegZero, isa.RegZero)
	b.Label("no_flush")

	b.I(isa.OpADDI, isa.RegS2, isa.RegS2, 1)
	b.I(isa.OpADDI, isa.RegS0, isa.RegS0, -1)
	b.Branch(isa.OpBEQ, isa.RegS0, isa.RegZero, "done")
	b.J("top") // back edge: JAL reaches across the multi-page body
	b.Label("done")
	b.Halt(0)
	emitTrapStubBody(b)
	img, err := b.Finish()
	if err != nil {
		t.Fatalf("seed %d: %v", seed, err)
	}
	return img
}

// bootChainTorture boots one torture image standalone and runs it to halt.
func bootChainTorture(t *testing.T, mode core.Mode, img []byte, tweak func(*core.Config)) *core.VM {
	t.Helper()
	cfg := core.Config{Name: "chain-" + mode.String(), Mode: mode, MemBytes: testRAM}
	if tweak != nil {
		tweak(&cfg)
	}
	vm, err := core.NewVM(mem.NewPool(2*testRAM>>isa.PageShift), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Boot(img); err != nil {
		t.Fatal(err)
	}
	if st := vm.RunToHalt(runBudget); st != core.StateHalted {
		t.Fatalf("[%v] final state %v (err=%v, pc=%#x)", mode, st, vm.Err, vm.CPU.PC)
	}
	if vm.HaltCode != 0 {
		t.Fatalf("[%v] guest panicked: halt=%#x", mode, vm.HaltCode)
	}
	return vm
}

// TestDifferentialBlockChainInvisible is the serial transparency proof for
// cross-page superblocks and block chaining: on randomized cross-page
// control-flow guests, the full fast-path stack must be indistinguishable
// from every arm combination — cycles, instret, registers, CSRs, UART,
// result slots, guest RAM, and every VMM/MMU/TLB statistic.
func TestDifferentialBlockChainInvisible(t *testing.T) {
	for _, seed := range []int64{1, 7, 23} {
		img := buildChainTorture(t, seed)
		for _, mode := range []core.Mode{core.ModeNative, core.ModeHW} {
			t.Run(fmt.Sprintf("%v/seed%d", mode, seed), func(t *testing.T) {
				base := bootChainTorture(t, mode, img, nil)
				// The proof has teeth only if the baseline actually chained.
				ic := base.CPU.ICache.Stats
				if ic.Crossings == 0 || ic.ChainHits == 0 {
					t.Fatalf("baseline never chained: %+v", ic)
				}
				for _, arm := range chainArms {
					ref := bootChainTorture(t, mode, img, arm.tweak)
					compareVMs(t, arm.name, ref, base, true)
				}
			})
		}
	}
}

// TestDifferentialBlockChainParallel extends the proof to the parallel
// engine: a fleet of torture guests (distinct seeds) run under RunParallel
// must be byte-identical with chaining on or off at every worker count 1..4,
// including host clock and pool occupancy.
func TestDifferentialBlockChainParallel(t *testing.T) {
	imgs := [][]byte{
		buildChainTorture(t, 101),
		buildChainTorture(t, 202),
		buildChainTorture(t, 303),
		buildChainTorture(t, 404),
	}
	build := func(tweak func(*core.Config)) *core.Host {
		h := core.NewHost(16<<20>>isa.PageShift, 2, sched.NewCredit())
		for i, img := range imgs {
			cfg := core.Config{Name: fmt.Sprintf("chain%d", i), Mode: core.ModeHW, MemBytes: testRAM}
			if tweak != nil {
				tweak(&cfg)
			}
			vm, err := h.CreateVM(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := vm.Boot(img); err != nil {
				t.Fatal(err)
			}
			h.AddToScheduler(i, 256, 0)
		}
		return h
	}

	ref := build(func(c *core.Config) { c.NoBlockChain = true })
	runFleetParallel(t, ref, 1)

	for workers := 1; workers <= 4; workers++ {
		h := build(nil)
		runFleetParallel(t, h, workers)
		if h.Now != ref.Now {
			t.Errorf("w=%d: host clock %d != %d", workers, h.Now, ref.Now)
		}
		if h.Pool.InUse() != ref.Pool.InUse() {
			t.Errorf("w=%d: pool occupancy %d != %d", workers, h.Pool.InUse(), ref.Pool.InUse())
		}
		chained := false
		for i := range h.VMs {
			compareVMs(t, fmt.Sprintf("chain w=%d vm=%s", workers, h.VMs[i].Name),
				ref.VMs[i], h.VMs[i], true)
			if st := h.VMs[i].CPU.ICache.Stats; st.Crossings > 0 && st.ChainHits > 0 {
				chained = true
			}
		}
		if !chained {
			t.Errorf("w=%d: no VM ever chained a block", workers)
		}
	}
}
