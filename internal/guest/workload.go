package guest

import (
	"govisor/internal/core"
	"govisor/internal/gabi"
)

// Workload is a declarative description of what the guest kernel should run;
// Apply writes it into a VM's boot parameters.
type Workload struct {
	Kind       uint64 // gabi.W*
	Iterations uint64
	WorkingSet uint64 // pages
	Stride     uint64 // bytes
	WriteFrac  uint64 // percent of touches that write
	Arg0       uint64 // workload-specific (see gabi)
	Arg1       uint64
	Arg2       uint64
}

// Apply stores the workload into the VM's parameter block (call before
// VM.Boot).
func (w Workload) Apply(vm *core.VM) {
	vm.SetParam(gabi.PWorkload, w.Kind)
	vm.SetParam(gabi.PIterations, w.Iterations)
	vm.SetParam(gabi.PWorkingSet, w.WorkingSet)
	vm.SetParam(gabi.PStride, w.Stride)
	vm.SetParam(gabi.PWriteFrac, w.WriteFrac)
	vm.SetParam(gabi.PArg0, w.Arg0)
	vm.SetParam(gabi.PArg1, w.Arg1)
	vm.SetParam(gabi.PArg2, w.Arg2)
}

// Compute returns an ALU-bound workload with one privileged CSR write per
// aluPerPriv ALU operations (0 disables privileged ops). Drives T1/F3.
func Compute(iterations, aluPerPriv uint64) Workload {
	return Workload{Kind: gabi.WCompute, Iterations: iterations, Arg0: aluPerPriv}
}

// MemTouch returns a working-set walker. Drives F4/T10.
func MemTouch(iterations, pages, writeFrac uint64) Workload {
	return Workload{Kind: gabi.WMemTouch, Iterations: iterations, WorkingSet: pages, WriteFrac: writeFrac}
}

// PTChurn returns a map/touch/unmap loop. batched enables the paravirtual
// multicall path (ignored in other modes). Drives F5/A1.
func PTChurn(iterations uint64, batched bool) Workload {
	w := Workload{Kind: gabi.WPTChurn, Iterations: iterations}
	if batched {
		w.Arg0 = 1
	}
	return w
}

// Syscall returns a user/kernel ping-pong of n round trips. Drives T1.
func Syscall(n uint64) Workload {
	return Workload{Kind: gabi.WSyscall, Iterations: n}
}

// CSRLoop returns n privileged CSR write+read pairs. Drives T1.
func CSRLoop(n uint64) Workload {
	return Workload{Kind: gabi.WCSR, Iterations: n}
}

// Dirty returns the migration mutator: each round writes one word in each
// of pages pages with thinkOps ALU operations between writes; rounds = 0
// runs forever. Drives F7/F8.
func Dirty(rounds, pages, thinkOps uint64) Workload {
	return Workload{Kind: gabi.WDirty, Iterations: rounds, WorkingSet: pages, Arg0: thinkOps}
}

// Idle returns the latency-sensitive workload: a periodic timer every
// period cycles, ticks times. Result1 accumulates wakeup latency. Drives
// F11.
func Idle(ticks, period uint64) Workload {
	return Workload{Kind: gabi.WIdle, Iterations: ticks, Arg0: period}
}
