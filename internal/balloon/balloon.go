// Package balloon implements the host-side memory overcommit policy that
// drives virtio-balloon devices: given a host pool under pressure, it
// decides how much memory to reclaim from which VMs (proportional-share
// with a reserve floor), and models the "swap" cost a guest pays when it
// touches a reclaimed page. Experiment T10 sweeps the overcommit ratio.
package balloon

import (
	"govisor/internal/mem"
	"govisor/internal/virtio"
)

// Target is the policy output for one VM.
type Target struct {
	VM    int
	Pages uint64 // balloon size to request (pages leased to the host)
}

// Policy computes balloon targets for a set of VMs over one pool.
type Policy struct {
	// ReserveFrames keeps headroom in the pool before any reclaim starts.
	ReserveFrames uint64
	// FloorPages is the minimum resident set each VM must keep.
	FloorPages uint64
}

// DefaultPolicy returns a policy with a small reserve and a 32-page floor.
func DefaultPolicy() Policy {
	return Policy{ReserveFrames: 16, FloorPages: 32}
}

// Compute sizes each VM's balloon so the pool regains the reserve. Demand
// is measured by present pages; reclaim is apportioned proportionally to
// each VM's resident set above its floor.
func (p Policy) Compute(pool *mem.Pool, vms []*mem.GuestPhys) []Target {
	targets := make([]Target, len(vms))
	for i := range targets {
		targets[i].VM = i
	}
	free := pool.Free()
	if free >= p.ReserveFrames {
		return targets // no pressure: all balloons deflate to zero
	}
	need := p.ReserveFrames - free

	var reclaimable uint64
	above := make([]uint64, len(vms))
	for i, g := range vms {
		if g.Present() > p.FloorPages {
			above[i] = g.Present() - p.FloorPages
			reclaimable += above[i]
		}
	}
	if reclaimable == 0 {
		return targets
	}
	if need > reclaimable {
		need = reclaimable
	}
	for i := range vms {
		targets[i].Pages = need * above[i] / reclaimable
	}
	return targets
}

// Controller connects the policy to concrete balloon devices.
type Controller struct {
	Policy   Policy
	Pool     *mem.Pool
	Balloons []*virtio.Balloon
	Spaces   []*mem.GuestPhys
	// Swap, when set, preserves evicted page contents (host swapping);
	// ReclaimOne requires it to evict non-zero pages safely.
	Swap *Swapper

	// Stats.
	Adjustments uint64
}

// Rebalance recomputes targets and pushes them into the device config
// spaces; guests react by inflating/deflating on their next poll.
//
//govisor:serialonly(reads every VM's memory pressure and writes device config; cross-VM)
func (c *Controller) Rebalance() {
	targets := c.Policy.Compute(c.Pool, c.Spaces)
	for i, t := range targets {
		if i < len(c.Balloons) && c.Balloons[i].Target() != t.Pages {
			c.Balloons[i].SetTarget(t.Pages)
			c.Adjustments++
		}
	}
}

// Swapper is the host swap device behind emergency reclaim: evicted pages
// keep their contents in host-side storage and return on demand through the
// VM's PageSource hook. Unlike ballooning (where the guest hands over pages
// it knows are free), swap may evict any page — kernel text, page tables —
// so content preservation is what keeps the guest correct under thrash.
type Swapper struct {
	store map[*mem.GuestPhys]map[uint64][]byte

	SwapOuts, SwapIns uint64
}

// NewSwapper creates an empty swap device.
func NewSwapper() *Swapper {
	return &Swapper{store: make(map[*mem.GuestPhys]map[uint64][]byte)}
}

// SwapOut saves gfn's contents and releases its frame.
func (s *Swapper) SwapOut(g *mem.GuestPhys, gfn uint64) {
	buf := make([]byte, 4096)
	g.ReadRaw(gfn, buf)
	m := s.store[g]
	if m == nil {
		m = make(map[uint64][]byte)
		s.store[g] = m
	}
	m[gfn] = buf
	g.Unmap(gfn)
	s.SwapOuts++
}

// Source returns a PageSource function for g: a not-present fault on a
// swapped page restores its contents (and forgets the swap slot).
func (s *Swapper) Source(g *mem.GuestPhys) func(gfn uint64) ([]byte, bool) {
	return func(gfn uint64) ([]byte, bool) {
		m := s.store[g]
		if m == nil {
			return nil, false
		}
		page, ok := m[gfn]
		if !ok {
			return nil, false
		}
		delete(m, gfn)
		s.SwapIns++
		return page, true
	}
}

// Stored returns the number of pages currently swapped out for g.
func (s *Swapper) Stored(g *mem.GuestPhys) int { return len(s.store[g]) }

// ReclaimOne swaps out one reclaimable page (LRU approximation: the
// highest-numbered present, unprotected, preferably non-dirty page). It is
// the emergency path behind core.VM.ReclaimHook when a guest faults while
// the pool is empty. When the controller has a Swapper, contents are
// preserved and restored on the next touch; without one, reclaim refuses to
// run (dropping arbitrary page contents would corrupt the guest) unless the
// page is still zero-filled. Returns false if nothing could be reclaimed.
//
//govisor:serialonly(steals frames from other VMs' address spaces; cross-VM)
func (c *Controller) ReclaimOne() bool {
	var victim *mem.GuestPhys
	victimGfn := uint64(0)
	found := false
	for _, g := range c.Spaces {
		for gfn := g.Pages(); gfn > 0; gfn-- {
			i := gfn - 1
			if g.Frame(i) == mem.NoFrame || g.WriteProtected(i) || g.Pinned(i) {
				continue
			}
			if !found || !g.Dirty(i) {
				victim, victimGfn, found = g, i, true
				if !g.Dirty(i) {
					break
				}
			}
		}
		if found && !victim.Dirty(victimGfn) {
			break
		}
	}
	if !found {
		return false
	}
	if c.Swap != nil {
		c.Swap.SwapOut(victim, victimGfn)
		return true
	}
	// No swap device: only zero-filled pages are safe to drop.
	hfn := victim.Frame(victimGfn)
	if hfn == mem.NoFrame || !c.Pool.IsZero(hfn) {
		return false
	}
	victim.Unmap(victimGfn)
	return true
}
