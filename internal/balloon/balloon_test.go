package balloon

import (
	"testing"

	"govisor/internal/isa"
	"govisor/internal/mem"
	"govisor/internal/virtio"
)

func space(t *testing.T, pool *mem.Pool, pages uint64) *mem.GuestPhys {
	t.Helper()
	g := mem.NewGuestPhys(pool, pages*isa.PageSize)
	if err := g.PopulateAll(); err != nil {
		t.Fatal(err)
	}
	return g
}

func TestPolicyNoPressureNoTargets(t *testing.T) {
	pool := mem.NewPool(256)
	g := space(t, pool, 64)
	p := DefaultPolicy()
	targets := p.Compute(pool, []*mem.GuestPhys{g})
	if targets[0].Pages != 0 {
		t.Fatalf("target = %d with a roomy pool", targets[0].Pages)
	}
}

func TestPolicyProportionalReclaim(t *testing.T) {
	pool := mem.NewPool(200)
	big := space(t, pool, 128)
	small := space(t, pool, 64)
	// Pool: 192 in use of 200 → free 8 < reserve 16.
	p := DefaultPolicy()
	targets := p.Compute(pool, []*mem.GuestPhys{big, small})
	if targets[0].Pages == 0 {
		t.Fatal("big VM should be asked to balloon")
	}
	// Proportional to resident-above-floor: big (96 above) vs small (32).
	if targets[0].Pages <= targets[1].Pages {
		t.Fatalf("targets big=%d small=%d", targets[0].Pages, targets[1].Pages)
	}
}

func TestPolicyRespectsFloor(t *testing.T) {
	pool := mem.NewPool(40)
	g := space(t, pool, 40) // pool fully consumed
	p := Policy{ReserveFrames: 64, FloorPages: 32}
	targets := p.Compute(pool, []*mem.GuestPhys{g})
	// Only 8 pages sit above the floor; the target must not exceed that.
	if targets[0].Pages > 8 {
		t.Fatalf("target %d exceeds reclaimable", targets[0].Pages)
	}
}

func TestControllerRebalancePushesTargets(t *testing.T) {
	pool := mem.NewPool(80)
	g := space(t, pool, 72)
	bal := virtio.NewBalloon(nopOps{})
	ctl := &Controller{
		Policy: DefaultPolicy(), Pool: pool,
		Balloons: []*virtio.Balloon{bal},
		Spaces:   []*mem.GuestPhys{g},
	}
	ctl.Rebalance()
	if bal.Target() == 0 {
		t.Fatal("no target pushed under pressure")
	}
	if ctl.Adjustments != 1 {
		t.Fatalf("adjustments = %d", ctl.Adjustments)
	}
	// Unchanged target ⇒ no duplicate adjustment.
	ctl.Rebalance()
	if ctl.Adjustments != 1 {
		t.Fatalf("adjustments after stable rebalance = %d", ctl.Adjustments)
	}
}

type nopOps struct{}

func (nopOps) ReclaimPage(uint64) {}
func (nopOps) ReturnPage(uint64)  {}

func TestReclaimOnePrefersClean(t *testing.T) {
	pool := mem.NewPool(64)
	g := space(t, pool, 16)
	// Dirty the high pages; leave page 3 clean.
	for gfn := uint64(4); gfn < 16; gfn++ {
		g.WriteUint(gfn*isa.PageSize, 8, 1)
	}
	ctl := &Controller{Policy: DefaultPolicy(), Pool: pool, Spaces: []*mem.GuestPhys{g}}
	if !ctl.ReclaimOne() {
		t.Fatal("nothing reclaimed")
	}
	// A clean page must have been chosen (one of 0..3).
	clean := 0
	for gfn := uint64(0); gfn < 4; gfn++ {
		if g.Frame(gfn) != mem.NoFrame {
			clean++
		}
	}
	if clean == 4 {
		t.Fatal("reclaimed a dirty page despite clean candidates")
	}
}

func TestReclaimOneSkipsProtectedAndEmpty(t *testing.T) {
	pool := mem.NewPool(64)
	g := mem.NewGuestPhys(pool, 4*isa.PageSize)
	ctl := &Controller{Spaces: []*mem.GuestPhys{g}}
	if ctl.ReclaimOne() {
		t.Fatal("reclaimed from an empty space")
	}
	g.Populate(1)
	g.WriteProtect(1, true)
	if ctl.ReclaimOne() {
		t.Fatal("reclaimed a write-protected page")
	}
}
