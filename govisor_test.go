package govisor_test

import (
	"bytes"
	"testing"

	"govisor"
)

// TestPublicAPIQuickstart runs the documented quick-start flow.
func TestPublicAPIQuickstart(t *testing.T) {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	vm, err := govisor.NewVM(govisor.NewPool(32<<20>>12), govisor.Config{
		Name: "demo", Mode: govisor.ModeHW, MemBytes: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	govisor.Compute(1000, 10).Apply(vm)
	if err := vm.Boot(kernel); err != nil {
		t.Fatal(err)
	}
	if st := vm.RunToHalt(1e9); st != govisor.StateHalted {
		t.Fatalf("state %v", st)
	}
	if vm.Result(govisor.ResultPrimary) == 0 {
		t.Fatal("no result")
	}
}

// TestIntegrationCloneThenMigrate chains the memory services: boot, clone
// copy-on-write, then live-migrate the clone to a second host pool.
func TestIntegrationCloneThenMigrate(t *testing.T) {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	poolA := govisor.NewPool(64 << 20 >> 12)
	src, err := govisor.NewVM(poolA, govisor.Config{Name: "src", Mode: govisor.ModeHW, MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	govisor.Dirty(0, 16, 500).Apply(src)
	if err := src.Boot(kernel); err != nil {
		t.Fatal(err)
	}
	src.Step(3_000_000)
	src.Pause()

	clone, err := govisor.NewVM(poolA, govisor.Config{Name: "clone", Mode: govisor.ModeHW, MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := govisor.CloneVM(src, clone); err != nil {
		t.Fatal(err)
	}
	clone.Step(3_000_000)
	if clone.State == govisor.StateError {
		t.Fatalf("clone errored: %v", clone.Err)
	}

	// Migrate the running clone to a second "host".
	poolB := govisor.NewPool(64 << 20 >> 12)
	dst, err := govisor.NewVM(poolB, govisor.Config{Name: "dst", Mode: govisor.ModeHW, MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := govisor.Migrate(clone, dst, govisor.DefaultMigrateOptions())
	if err != nil {
		t.Fatal(err)
	}
	if rep.BytesSent == 0 {
		t.Fatal("nothing transferred")
	}
	before := dst.Result(govisor.ResultPrimary)
	dst.Step(30_000_000)
	if dst.Result(govisor.ResultPrimary) <= before {
		t.Fatal("migrated clone made no progress")
	}
	// And the original still resumes untouched.
	src.Resume()
	src.Step(3_000_000)
	if src.State == govisor.StateError {
		t.Fatalf("original broken: %v", src.Err)
	}
}

// TestIntegrationSnapshotAcrossHosts: snapshot on one host, restore on
// another, with dedup reclaiming the duplicate pages afterwards.
func TestIntegrationSnapshotDedup(t *testing.T) {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	pool := govisor.NewPool(64 << 20 >> 12)
	a, err := govisor.NewVM(pool, govisor.Config{Name: "a", Mode: govisor.ModeHW, MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	govisor.Dirty(0, 16, 500).Apply(a)
	if err := a.Boot(kernel); err != nil {
		t.Fatal(err)
	}
	a.Step(3_000_000)
	a.Pause()

	var img bytes.Buffer
	if err := govisor.SaveSnapshot(a, &img); err != nil {
		t.Fatal(err)
	}
	b, err := govisor.NewVM(pool, govisor.Config{Name: "b", Mode: govisor.ModeHW, MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if err := govisor.RestoreSnapshot(b, &img); err != nil {
		t.Fatal(err)
	}

	// a and b now hold identical content: dedup should reclaim frames.
	before := pool.InUse()
	sc := govisor.NewDedupScanner(pool)
	sc.ScanVM(a.Mem)
	sc.ScanVM(b.Mem)
	if pool.InUse() >= before {
		t.Fatalf("dedup freed nothing: %d → %d", before, pool.InUse())
	}
	// Both keep running after the merge (COW splits under them).
	b.Step(10_000_000)
	if b.State == govisor.StateError {
		t.Fatalf("restored vm errored: %v", b.Err)
	}
}

// TestIntegrationHostSchedulerWithIO runs VMs with different personalities
// (CPU hog + I/O) under the credit scheduler on one host.
func TestIntegrationHostSchedulerWithIO(t *testing.T) {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		t.Fatal(err)
	}
	host := govisor.NewHost(64<<20>>12, 2, govisor.NewCredit())
	// Two compute hogs.
	for i := 0; i < 2; i++ {
		vm, err := host.CreateVM(govisor.Config{Name: "hog", Mode: govisor.ModeHW, MemBytes: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		govisor.Dirty(0, 8, 100).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			t.Fatal(err)
		}
		host.AddToScheduler(i, 256, 0)
	}
	// One virtio-blk I/O VM.
	io, err := host.CreateVM(govisor.Config{Name: "io", Mode: govisor.ModeHW, MemBytes: 4 << 20})
	if err != nil {
		t.Fatal(err)
	}
	blkImg := govisor.NewRawImage(8192)
	if _, _, err := io.AttachVirtioBlk(blkImg); err != nil {
		t.Fatal(err)
	}
	prog, err := govisor.BuildVirtioBlkProgram(64, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := io.Boot(prog); err != nil {
		t.Fatal(err)
	}
	host.AddToScheduler(2, 256, 0)

	host.Run(60_000_000)
	if io.State != govisor.StateHalted {
		t.Fatalf("io vm state %v (err %v)", io.State, io.Err)
	}
	if blkImg.Writes != 64 {
		t.Fatalf("disk writes = %d", blkImg.Writes)
	}
	for i := 0; i < 2; i++ {
		if host.VMs[i].Result(govisor.ResultPrimary) == 0 {
			t.Fatal("hog starved")
		}
	}
}

// TestIntegrationCOWDiskWithVM: virtio-blk over a COW chain; writes land in
// the top layer only.
func TestIntegrationCOWDiskWithVM(t *testing.T) {
	base := govisor.NewRawImage(8192)
	gold := govisor.NewCOWImage(base)
	top := gold.Snapshot()

	vm, err := govisor.NewVM(govisor.NewPool(32<<20>>12), govisor.Config{
		Name: "cow", Mode: govisor.ModeHW, MemBytes: 8 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := vm.AttachVirtioBlk(top); err != nil {
		t.Fatal(err)
	}
	prog, err := govisor.BuildVirtioBlkProgram(32, 8, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.Boot(prog); err != nil {
		t.Fatal(err)
	}
	if st := vm.RunToHalt(5e9); st != govisor.StateHalted || vm.HaltCode != 0 {
		t.Fatalf("state %v code %#x", st, vm.HaltCode)
	}
	if top.Allocated() != 32 {
		t.Fatalf("top layer sectors = %d", top.Allocated())
	}
	if gold.Allocated() != 0 {
		t.Fatal("gold layer must stay untouched")
	}
}
