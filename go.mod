module govisor

go 1.22
