// Package govisor_test hosts the benchmark harness: one testing.B benchmark
// per reproduced table/figure (delegating to internal/bench, the same
// runners cmd/benchsuite prints), plus microbenchmarks of the hot paths.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// Regenerate one experiment's table with output:
//
//	go test -bench=BenchmarkF7 -v
package govisor_test

import (
	"testing"

	"govisor"
	"govisor/internal/bench"
	"govisor/internal/metrics"
)

// runExperiment wraps a bench runner as a testing.B benchmark. The table is
// logged once so -v shows the reproduced rows.
func runExperiment(b *testing.B, id string) {
	var exp *bench.Experiment
	for _, e := range bench.All() {
		if e.ID == id {
			exp = &e
			break
		}
	}
	if exp == nil {
		b.Fatalf("unknown experiment %s", id)
	}
	var table *metrics.Table
	for i := 0; i < b.N; i++ {
		t, err := exp.Run()
		if err != nil {
			b.Fatal(err)
		}
		table = t
	}
	if table != nil {
		b.Logf("%s — %s\n%s", exp.ID, exp.Name, table.String())
	}
}

func BenchmarkT1_PrivilegedOps(b *testing.B)  { runExperiment(b, "T1") }
func BenchmarkT2_ExitLatency(b *testing.B)    { runExperiment(b, "T2") }
func BenchmarkF3_PrivDensity(b *testing.B)    { runExperiment(b, "F3") }
func BenchmarkF4_WorkingSet(b *testing.B)     { runExperiment(b, "F4") }
func BenchmarkF5_PTChurn(b *testing.B)        { runExperiment(b, "F5") }
func BenchmarkT6_IOPath(b *testing.B)         { runExperiment(b, "T6") }
func BenchmarkF7_Migration(b *testing.B)      { runExperiment(b, "F7") }
func BenchmarkF8_PrecopyRounds(b *testing.B)  { runExperiment(b, "F8") }
func BenchmarkF9_Dedup(b *testing.B)          { runExperiment(b, "F9") }
func BenchmarkT10_Balloon(b *testing.B)       { runExperiment(b, "T10") }
func BenchmarkF11_Sched(b *testing.B)         { runExperiment(b, "F11") }
func BenchmarkT12_WeightCap(b *testing.B)     { runExperiment(b, "T12") }
func BenchmarkT13_Consolidation(b *testing.B) { runExperiment(b, "T13") }
func BenchmarkT14_Provision(b *testing.B)     { runExperiment(b, "T14") }
func BenchmarkF15_COWDepth(b *testing.B)      { runExperiment(b, "F15") }
func BenchmarkA1_ParaBatching(b *testing.B)   { runExperiment(b, "A1") }
func BenchmarkA2_ASIDFlush(b *testing.B)      { runExperiment(b, "A2") }
func BenchmarkA3_PrecopyBounds(b *testing.B)  { runExperiment(b, "A3") }
func BenchmarkA4_QueueDepth(b *testing.B)     { runExperiment(b, "A4") }
func BenchmarkM1_ICache(b *testing.B)         { runExperiment(b, "M1") }
func BenchmarkM2_ParallelFleet(b *testing.B)  { runExperiment(b, "M2") }
func BenchmarkM3_Superblocks(b *testing.B)    { runExperiment(b, "M3") }
func BenchmarkM4_Dispatch(b *testing.B)       { runExperiment(b, "M4") }
func BenchmarkM5_WriteMemo(b *testing.B)      { runExperiment(b, "M5") }
func BenchmarkM6_BlockChain(b *testing.B)     { runExperiment(b, "M6") }
func BenchmarkM7_Evacuation(b *testing.B)     { runExperiment(b, "M7") }
func BenchmarkM8_HotTraces(b *testing.B)      { runExperiment(b, "M8") }
func BenchmarkM9_Dataplane(b *testing.B)      { runExperiment(b, "M9") }

// ---- microbenchmarks of the simulator's own hot paths ----

// BenchmarkInterpreterMIPS measures raw interpreter throughput
// (instructions per second of host time).
func BenchmarkInterpreterMIPS(b *testing.B) {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var instrs uint64
	for i := 0; i < b.N; i++ {
		vm, err := govisor.NewVM(govisor.NewPool(8<<20>>12), govisor.Config{
			Name: "mips", Mode: govisor.ModeNative, MemBytes: 4 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		govisor.Compute(2000, 0).Apply(vm)
		if err := vm.Boot(kernel); err != nil {
			b.Fatal(err)
		}
		if st := vm.RunToHalt(1e9); st != govisor.StateHalted {
			b.Fatalf("state %v", st)
		}
		instrs += vm.CPU.Instret
	}
	b.ReportMetric(float64(instrs)/b.Elapsed().Seconds()/1e6, "guest-MIPS")
}

// BenchmarkVMBoot measures VM creation + boot latency.
func BenchmarkVMBoot(b *testing.B) {
	kernel, err := govisor.BuildKernel()
	if err != nil {
		b.Fatal(err)
	}
	pool := govisor.NewPool(1 << 20)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm, err := govisor.NewVM(pool, govisor.Config{
			Name: "boot", Mode: govisor.ModeHW, MemBytes: 4 << 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := vm.Boot(kernel); err != nil {
			b.Fatal(err)
		}
		vm.Release()
	}
}

// BenchmarkKernelAssembly measures the guest toolchain.
func BenchmarkKernelAssembly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := govisor.BuildKernel(); err != nil {
			b.Fatal(err)
		}
	}
}
