// Package govisor is a machine-simulation hypervisor study in Go: a complete
// virtual machine monitor over a simulated 64-bit RISC machine (GV64), built
// to reproduce the canonical evaluation of a SOSP-class virtualization paper
// without requiring KVM/VT-x access.
//
// The library implements, from scratch:
//
//   - the GV64 ISA, an assembler, and a cycle-accounting interpreter
//   - a software MMU with a set-associative TLB and three translation
//     regimes: direct 1-D paging, VMM-maintained shadow paging, and nested
//     (two-dimensional) paging with the (g+1)(n+1)−1 walk cost
//   - the VMM itself: exit dispatch, privileged-instruction emulation,
//     hypercalls, virtual interrupts — supporting four execution modes
//     (native baseline, trap-and-emulate, paravirtual, hardware-assist)
//   - devices: programmed-I/O baselines and virtio (blk/net/console/balloon)
//     over split virtqueues, an L2 switch, COW disk images
//   - memory services: ballooning, content-based page dedup, COW cloning
//   - live migration: pre-copy, stop-and-copy, post-copy
//   - vCPU schedulers: round-robin, Xen-style credit, CFS-like fair
//   - a parallel host execution engine (Host.RunParallel): VM fleets run
//     across worker goroutines over a lock-striped frame pool, with every
//     guest-visible result byte-identical to serial execution
//
// The public API re-exports the building blocks; see the examples directory
// for runnable programs and EXPERIMENTS.md for the reproduced evaluation.
//
// # Quick start
//
//	kernel, _ := govisor.BuildKernel()
//	vm, _ := govisor.NewVM(govisor.NewPool(32<<20/4096), govisor.Config{
//	    Name: "demo", Mode: govisor.ModeHW, MemBytes: 16 << 20,
//	})
//	govisor.Compute(1000, 10).Apply(vm)
//	vm.Boot(kernel)
//	vm.RunToHalt(1e9)
package govisor

import (
	"govisor/internal/core"
	"govisor/internal/faultnet"
	"govisor/internal/gabi"
	"govisor/internal/guest"
	"govisor/internal/ksm"
	"govisor/internal/mem"
	"govisor/internal/migrate"
	"govisor/internal/sched"
	"govisor/internal/snapshot"
	"govisor/internal/storage"
	"govisor/internal/vcpu"
	"govisor/internal/vnet"
)

// Core VMM types.
type (
	// VM is one guest virtual machine; see core.VM.
	VM = core.VM
	// Config describes a VM to create.
	Config = core.Config
	// Mode selects the virtualization style.
	Mode = core.Mode
	// State is a VM lifecycle state.
	State = core.State
	// Host is one simulated physical machine multiplexing VMs.
	Host = core.Host
	// Marker is a guest benchmark-region marker.
	Marker = core.Marker
	// Pool is host physical memory.
	Pool = mem.Pool
	// Costs is the cycle cost model.
	Costs = vcpu.Costs
	// Workload parameterizes the universal guest kernel.
	Workload = guest.Workload
)

// Virtualization modes.
const (
	ModeNative = core.ModeNative // bare-hardware baseline
	ModeTrap   = core.ModeTrap   // trap-and-emulate + shadow paging
	ModePara   = core.ModePara   // paravirtual (hypercall MMU)
	ModeHW     = core.ModeHW     // hardware-assist (nested paging)
)

// VM states.
const (
	StateCreated = core.StateCreated
	StateRunning = core.StateRunning
	StateIdle    = core.StateIdle
	StatePaused  = core.StatePaused
	StateHalted  = core.StateHalted
	StateError   = core.StateError
)

// NewPool creates a host memory pool of the given capacity in 4 KiB frames.
func NewPool(frames uint64) *Pool { return mem.NewPool(frames) }

// NewPoolSharded creates a host pool with an explicit lock-stripe count
// (contention tuning for Host.RunParallel; semantics are unaffected).
func NewPoolSharded(frames uint64, shards int) *Pool { return mem.NewPoolSharded(frames, shards) }

// NewVM creates a VM over a host pool.
func NewVM(pool *Pool, cfg Config) (*VM, error) { return core.NewVM(pool, cfg) }

// NewHost creates a simulated physical machine with the given memory budget
// (frames), core count, and scheduler.
func NewHost(poolFrames uint64, pcpus int, s core.Scheduler) *Host {
	return core.NewHost(poolFrames, pcpus, s)
}

// DefaultCosts returns the standard cycle cost model.
func DefaultCosts() Costs { return vcpu.DefaultCosts() }

// Guest software.
var (
	// BuildKernel assembles the universal guest kernel.
	BuildKernel = guest.BuildKernel
	// Workload constructors (apply before Boot).
	Compute  = guest.Compute
	MemTouch = guest.MemTouch
	PTChurn  = guest.PTChurn
	Syscall  = guest.Syscall
	CSRLoop  = guest.CSRLoop
	Dirty    = guest.Dirty
	Idle     = guest.Idle
	// I/O benchmark guests.
	BuildPIODiskProgram   = guest.BuildPIODiskProgram
	BuildVirtioBlkProgram = guest.BuildVirtioBlkProgram
	BuildRegNICProgram    = guest.BuildRegNICProgram
	BuildVirtioNetProgram = guest.BuildVirtioNetProgram
)

// Result slots of the universal kernel (read with VM.Result).
const (
	ResultPrimary = gabi.PResult0
	ResultLatency = gabi.PResult1
)

// Storage.
type (
	// RawImage is a flat in-memory disk image.
	RawImage = storage.Raw
	// COWImage is a copy-on-write layer with snapshot chains.
	COWImage = storage.COW
)

// NewRawImage creates a raw disk of the given sector count.
func NewRawImage(sectors uint64) *RawImage { return storage.NewRaw(sectors) }

// NewCOWImage layers a writable COW image over a backing image.
func NewCOWImage(backing storage.Image) *COWImage { return storage.NewCOW(backing) }

// Networking.
type (
	// Switch is the virtual L2 switch.
	Switch = vnet.Switch
	// SwitchPort is one switch attachment.
	SwitchPort = vnet.Port
)

// NewSwitch creates a virtual L2 switch.
func NewSwitch() *Switch { return vnet.NewSwitch() }

// Schedulers.
var (
	// NewRoundRobin creates the baseline scheduler.
	NewRoundRobin = sched.NewRoundRobin
	// NewCredit creates the Xen-style credit scheduler.
	NewCredit = sched.NewCredit
	// NewCFS creates the CFS-like fair scheduler.
	NewCFS = sched.NewCFS
)

// Migration.
type (
	// MigrateOptions configures a live migration.
	MigrateOptions = migrate.Options
	// MigrateReport is a migration outcome.
	MigrateReport = migrate.Report
	// Link models the migration channel.
	Link = migrate.Link
	// StreamOptions configures a streamed (wire-transport) migration.
	StreamOptions = migrate.StreamOptions
	// StreamReport is a streamed migration outcome, with transport stats.
	StreamReport = migrate.StreamReport
	// FaultPlan schedules deterministic transport faults.
	FaultPlan = faultnet.Plan
	// FaultInjector wraps connections with a seeded fault schedule.
	FaultInjector = faultnet.Injector
)

// Migration modes.
const (
	PreCopy     = migrate.PreCopy
	StopAndCopy = migrate.StopAndCopy
	PostCopy    = migrate.PostCopy
)

var (
	// Migrate moves a running guest between VMs.
	Migrate = migrate.Migrate
	// Gbps builds a migration link.
	Gbps = migrate.Gbps
	// DefaultMigrateOptions returns pre-copy over a 10 Gb link.
	DefaultMigrateOptions = migrate.DefaultOptions
	// StreamMigrate runs a migration over a real wire with retry,
	// resume, and abort-with-rollback.
	StreamMigrate = migrate.StreamMigrate
	// DefaultStreamOptions returns streamed pre-copy over net.Pipe.
	DefaultStreamOptions = migrate.DefaultStreamOptions
	// PipeWire builds an in-process wire, optionally fault-wrapped.
	PipeWire = migrate.PipeWire
	// NewFaultInjector builds a deterministic fault injector.
	NewFaultInjector = faultnet.NewInjector
)

// ErrMigrationAborted reports a streamed migration that gave up and rolled
// the source back.
var ErrMigrationAborted = migrate.ErrAborted

// Snapshot / cloning.
var (
	// SaveSnapshot serializes a paused VM.
	SaveSnapshot = snapshot.Save
	// RestoreSnapshot loads a snapshot into a fresh VM.
	RestoreSnapshot = snapshot.Restore
	// CloneVM instantly forks a VM copy-on-write on the same host.
	CloneVM = snapshot.Clone
)

// Memory dedup.
type (
	// DedupScanner merges identical pages across VMs.
	DedupScanner = ksm.Scanner
)

// NewDedupScanner creates a scanner over a host pool.
func NewDedupScanner(pool *Pool) *DedupScanner { return ksm.NewScanner(pool) }
